/**
 * @file
 * Per-hierarchy-level simulated-time accounting, matching the
 * categories of the paper's Figures 2 and 3: L1 instruction, L1 data
 * (inclusion maintenance only — data hits are fully pipelined), the
 * L2 cache / SRAM main memory level, and DRAM.
 *
 * Software handler time (TLB miss, page fault, context switch) is
 * *interleaved* through the hierarchy exactly as in the paper, so it
 * lands inside these four levels rather than in a separate bucket.
 */

#ifndef RAMPAGE_STATS_TIME_BREAKDOWN_HH
#define RAMPAGE_STATS_TIME_BREAKDOWN_HH

#include <array>
#include <cstddef>
#include <string>

#include "util/types.hh"

namespace rampage
{

/** The four accounted hierarchy levels (Figures 2-3). */
enum class TimeLevel : std::size_t
{
    L1I,   ///< instruction fetches (hits) + L1I inclusion probes
    L1D,   ///< L1D inclusion probes only (data hits are pipelined)
    L2,    ///< L2 cache, or the SRAM main memory under RAMpage
    Dram,  ///< Direct Rambus transfer time
};

constexpr std::size_t numTimeLevels = 4;

/** Accumulated simulated time per hierarchy level. */
class TimeBreakdown
{
  public:
    /** Add `ps` picoseconds to one level. */
    void
    add(TimeLevel level, Tick ps)
    {
        ticks[static_cast<std::size_t>(level)] += ps;
    }

    /** Time accumulated on one level. */
    Tick
    at(TimeLevel level) const
    {
        return ticks[static_cast<std::size_t>(level)];
    }

    /** Total simulated time across all levels. */
    Tick total() const;

    /** Fraction of total time on one level; 0 when total is 0. */
    double fraction(TimeLevel level) const;

    /** Element-wise accumulate another breakdown. */
    TimeBreakdown &operator+=(const TimeBreakdown &other);

    /**
     * Render a one-line summary; `l2_name` labels the third level
     * ("L2" or "SRAM MM").
     */
    std::string render(const std::string &l2_name = "L2") const;

    /** Reset all levels to zero. */
    void reset();

  private:
    std::array<Tick, numTimeLevels> ticks{};
};

/** Display name of a level ("L1i", "L1d", ...). */
std::string timeLevelName(TimeLevel level,
                          const std::string &l2_name = "L2");

} // namespace rampage

#endif // RAMPAGE_STATS_TIME_BREAKDOWN_HH
