/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.  Every bench
 * binary reproduces one of the paper's tables or figures; this class
 * renders aligned columns (and optionally CSV) so the output can be
 * compared against the paper row by row.
 */

#ifndef RAMPAGE_STATS_TABLE_HH
#define RAMPAGE_STATS_TABLE_HH

#include <string>
#include <vector>

namespace rampage
{

/**
 * An aligned text table.  Build it a row at a time; render() pads
 * every column to its widest cell.
 */
class TextTable
{
  public:
    /** Set the header row (optional). */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Render with aligned columns separated by two spaces. */
    std::string render() const;

    /** Render as CSV (header first when present). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** printf-style helper producing a std::string cell. */
std::string cellf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rampage

#endif // RAMPAGE_STATS_TABLE_HH
