/**
 * @file
 * Named-stats registry: the observability substrate under every
 * simulated component (gem5-style, as in the DRAM-cache design-space
 * studies this reproduction follows).
 *
 * Components register their statistics at construction under
 * hierarchical dotted names — "l1i.misses", "tlb.miss_ratio",
 * "pager.faults", "dram.tx_bytes" — without giving up their existing
 * plain-struct counters: a registered *counter* is a pointer to the
 * live field, sampled only at dump time, so the hot path pays
 * nothing.  *Formulas* are callbacks evaluated at dump time (ratios,
 * bandwidth); *histograms* reference a live Log2Histogram.
 *
 * A registry can be dumped as aligned text (dumpText) or JSON
 * (dumpJson), or frozen into a StatsSnapshot — a self-contained copy
 * that outlives the components (SimResult carries one per run, which
 * is what the benches' --json output and the sweep manifest consume).
 *
 * Naming scheme (see docs/ARCHITECTURE.md §"Observability"):
 *   l1i.* l1d.* l2.*   cache levels        tlb.*    translation
 *   pager.*            SRAM main memory    sched.*  scheduler
 *   dram.*             DRAM channel        sim.*    run-level counts
 */

#ifndef RAMPAGE_STATS_REGISTRY_HH
#define RAMPAGE_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/histogram.hh"
#include "util/json.hh"

namespace rampage
{

/**
 * A frozen, self-contained copy of a registry's values at one point
 * in time.  Entries keep registration order (grouped by component),
 * so text and JSON dumps are stable and diffable.
 */
class StatsSnapshot
{
  public:
    /** What one entry holds. */
    enum class Kind
    {
        Counter,   ///< sampled integer counter
        Value,     ///< evaluated formula / recorded double
        Histogram, ///< copied log2 bucket counts
    };

    struct Entry
    {
        std::string name;
        std::string desc;
        Kind kind = Kind::Counter;
        std::uint64_t counter = 0;            ///< Kind::Counter
        double value = 0.0;                   ///< Kind::Value
        std::vector<std::uint64_t> buckets;   ///< Kind::Histogram
        std::uint64_t samples = 0;            ///< Kind::Histogram
        std::uint64_t sum = 0;                ///< Kind::Histogram
    };

    /** Append entries post-hoc (run-level stats the registry can't own). */
    void addCounter(const std::string &name, const std::string &desc,
                    std::uint64_t value);
    void addValue(const std::string &name, const std::string &desc,
                  double value);

    /**
     * Append a fully-formed entry verbatim.  This is the rebuild path
     * for snapshots that crossed a process boundary (the sweep
     * runner's --isolate pipe): the decoder restores every field —
     * kind, description, histogram buckets — bit-exactly.
     */
    void addEntry(Entry entry);

    /** Append every entry of another snapshot. */
    void append(const StatsSnapshot &other);

    const std::vector<Entry> &entries() const { return items; }
    bool empty() const { return items.empty(); }

    /** Entry by exact name; nullptr when absent. */
    const Entry *find(const std::string &name) const;

    /**
     * Entries whose names match a shell-style glob ('*' any run, '?'
     * one character; see util/glob.hh), in original order.  Backs the
     * benches' --stats-filter so a dump can be scoped to "tlb.*".
     */
    StatsSnapshot filter(const std::string &pattern) const;

    /**
     * JSON object: scalar entries as numbers, histograms as
     * {count, samples, sum, mean, p50, p95, p99, log2_buckets:[...]}
     * (percentiles are log2-bucket upper-bound estimates).
     */
    JsonValue toJson() const;

    /** Aligned "name value  # description" lines. */
    std::string toText() const;

  private:
    friend class StatsRegistry;
    std::vector<Entry> items;
};

/**
 * The registry itself.  Each hierarchy owns one; components register
 * into it at construction.  Names must be unique — a duplicate
 * registration throws InternalError (it is always a wiring bug).
 */
class StatsRegistry
{
  public:
    /**
     * Register a live integer counter.  `value` must outlive the
     * registry (components register fields of their own stat structs,
     * which share the owning hierarchy's lifetime).
     */
    void addCounter(const std::string &name, const std::string &desc,
                    const std::uint64_t *value);

    /** Register a formula evaluated at dump/snapshot time. */
    void addFormula(const std::string &name, const std::string &desc,
                    std::function<double()> eval);

    /** Register a live histogram (same lifetime rule as counters). */
    void addHistogram(const std::string &name, const std::string &desc,
                      const Log2Histogram *histogram);

    bool has(const std::string &name) const;
    std::size_t size() const { return stats.size(); }

    /** Freeze every registered stat's current value. */
    StatsSnapshot snapshot() const;

    /** snapshot().toText() — a complete, diffable stats dump. */
    std::string dumpText() const;

    /** snapshot().toJson().dump() — the machine-readable dump. */
    std::string dumpJson() const;

  private:
    struct Stat
    {
        std::string name;
        std::string desc;
        StatsSnapshot::Kind kind = StatsSnapshot::Kind::Counter;
        const std::uint64_t *counter = nullptr;
        std::function<double()> eval;
        const Log2Histogram *histogram = nullptr;
    };

    void checkNewName(const std::string &name) const;

    std::vector<Stat> stats;
};

} // namespace rampage

#endif // RAMPAGE_STATS_REGISTRY_HH
