#!/bin/sh
# Regenerate every table/figure at the default scale, one log per bench.
# Each bench's stdout+stderr is captured; a failing bench is reported
# and makes the whole script exit nonzero, but the rest still run.
# Paper benches additionally write a machine-readable JSON report
# (results + full stats dumps) to results/<name>.json via --json;
# micro_components is a google-benchmark binary with its own CLI and
# is run as-is.
#
# Sweep-based benches run their points on the SweepRunner worker pool;
# --jobs defaults to the machine's core count (override with
# RAMPAGE_JOBS=n).  Results are identical for any job count.
mkdir -p results
jobs="${RAMPAGE_JOBS:-$(nproc 2>/dev/null || echo 1)}"
status=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "=== $name ==="
  case "$name" in
    micro_components) set -- ;;
    *) set -- --json "results/$name.json" --jobs "$jobs" ;;
  esac
  if "$b" "$@" >"results/$name.txt" 2>&1; then
    cat "results/$name.txt"
  else
    rc=$?
    cat "results/$name.txt"
    echo "!!! $name failed with exit status $rc" >&2
    status=1
  fi
done
exit $status
