#!/bin/sh
# Regenerate every table/figure at the default scale, one log per bench.
# Each bench's stdout+stderr is captured; a failing bench is reported
# and makes the whole script exit nonzero, but the rest still run.
# Paper benches additionally write a machine-readable JSON report
# (results + full stats dumps) to results/<name>.json via --json;
# micro_components is a google-benchmark binary with its own CLI and
# is run as-is.
#
# Sweep-based benches run their points on the SweepRunner worker pool;
# --jobs defaults to the machine's core count (override with
# RAMPAGE_JOBS=n).  Results are identical for any job count.
#
# Fault-tolerance knobs (all optional, all preserving byte-identical
# output when a campaign completes):
#   RAMPAGE_DEADLINE=<seconds>  per-point deadline (--point-deadline)
#   RAMPAGE_RETRIES=<n>         retry transient failures (--retries)
#   RAMPAGE_ISOLATE=1           fork each point so a crash in one
#                               point cannot take down the campaign
#                               (--isolate)
mkdir -p results
jobs="${RAMPAGE_JOBS:-$(nproc 2>/dev/null || echo 1)}"
extra=""
[ -n "${RAMPAGE_DEADLINE:-}" ] && extra="$extra --point-deadline $RAMPAGE_DEADLINE"
[ -n "${RAMPAGE_RETRIES:-}" ] && extra="$extra --retries $RAMPAGE_RETRIES"
[ "${RAMPAGE_ISOLATE:-0}" = "1" ] && extra="$extra --isolate"
status=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "=== $name ==="
  case "$name" in
    # The fuzz harness is not a paper bench: it has its own CLI and
    # CI steps (quick pass, corpus replay, nightly soak).
    rampage_fuzz) continue ;;
    micro_components) set -- ;;
    # $extra is a space-joined list of scalar flags; word splitting
    # is the intended behaviour here.
    # shellcheck disable=SC2086
    *) set -- --json "results/$name.json" --jobs "$jobs" $extra ;;
  esac
  if "$b" "$@" >"results/$name.txt" 2>&1; then
    cat "results/$name.txt"
  else
    rc=$?
    cat "results/$name.txt"
    echo "!!! $name failed with exit status $rc" >&2
    status=1
  fi
done

# Roll the per-bench JSON reports up into one simulator-throughput
# summary (results/BENCH_core.json): every simulated point's
# refs-per-simulate-phase-second (wall time excluding trace
# generation, audits and checkpoint I/O), per bench and overall.
# This is the number that bounds RAMPAGE_FULL-scale runs, tracked as
# a CI artifact.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || status=1
import glob, json

benches = []
rates = []
for path in sorted(glob.glob("results/*.json")):
    if path.endswith("BENCH_core.json"):
        continue
    with open(path) as fh:
        doc = json.load(fh)
    points = [
        {"label": r["label"], "refs_per_sec": r["refs_per_sec"]}
        for r in doc.get("results", [])
        if "refs_per_sec" in r
    ]
    if not points:
        continue
    per = [p["refs_per_sec"] for p in points]
    rates.extend(per)
    entry = {
        "bench": doc.get("bench", path),
        "scale": doc.get("scale", {}),
        "points": points,
        "mean_refs_per_sec": sum(per) / len(per),
    }
    if "phases" in doc:
        entry["phases"] = doc["phases"]
    benches.append(entry)

# Host-phase rollup across the suite: where the wall clock actually
# went (trace_gen / simulate / audit / checkpoint / ipc), summed over
# every bench process.
phase_totals = {}
for b in benches:
    for phase, seconds in b.get("phases", {}).items():
        phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds

summary = {
    "benches": benches,
    "total_points": len(rates),
    "mean_refs_per_sec": sum(rates) / len(rates) if rates else 0,
    "min_refs_per_sec": min(rates) if rates else 0,
    "max_refs_per_sec": max(rates) if rates else 0,
    "phases": phase_totals,
}
with open("results/BENCH_core.json", "w") as fh:
    json.dump(summary, fh, indent=2)
    fh.write("\n")
print("[throughput summary written to results/BENCH_core.json:",
      len(rates), "points]")
EOF
else
  echo "python3 not found; skipping results/BENCH_core.json" >&2
fi
exit $status
