#!/bin/sh
# Regenerate every table/figure at the default scale, one log per bench.
for b in build/bench/*; do
  name=$(basename "$b")
  echo "=== $name ==="
  "$b" 2>/dev/null | tee "results/$name.txt"
done
