/**
 * @file
 * Tests for the interval-stats time series: a traced run's JSONL
 * epochs must be well-formed, their counter deltas must sum exactly
 * to the final stats snapshot (the core acceptance invariant for
 * --stats-interval), and the final partial epoch must cover the tail
 * of the run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "obs/obs_config.hh"
#include "trace/synthetic.hh"
#include "util/json.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

std::vector<std::unique_ptr<TraceSource>>
tinyWorkload(int programs = 3)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (int i = 0; i < programs; ++i) {
        ProgramProfile profile;
        profile.name = "tiny" + std::to_string(i);
        profile.seed = 100 + i;
        profile.heapBytes = 256 * kib;
        sources.push_back(std::make_unique<SyntheticProgram>(
            profile, static_cast<Pid>(i)));
    }
    return sources;
}

SimResult
intervalRun(std::uint64_t refs, std::uint64_t interval,
            const std::string &tag, bool switch_on_miss = false)
{
    SimConfig sim;
    sim.maxRefs = refs;
    sim.quantumRefs = 10'000;
    sim.statsIntervalRefs = interval;
    sim.switchOnMiss = switch_on_miss;
    sim.intervalOutBase =
        std::string(::testing::TempDir()) + "/rampage_interval_" + tag;
    auto config = rampageConfig(oneGhz, 4 * kib);
    config.switchOnMiss = switch_on_miss;
    auto hier = makeHierarchy(config);
    Simulator simulator(*hier, tinyWorkload(), sim);
    return simulator.run();
}

std::vector<JsonValue>
readJsonLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::vector<JsonValue> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(JsonValue::parse(line));
    return lines;
}

TEST(IntervalStats, EpochsAreWellFormedAndComplete)
{
    SimResult result = intervalRun(60'000, 10'000, "shape");
    ASSERT_FALSE(result.intervalFile.empty());
    std::vector<JsonValue> lines = readJsonLines(result.intervalFile);
    // 60k refs at a 10k interval: 6 boundary epochs, no tail.
    ASSERT_EQ(lines.size(), 6u);
    const StatsSnapshot::Entry *epochs =
        result.stats.find("sim.interval.epochs");
    ASSERT_NE(epochs, nullptr);
    EXPECT_EQ(epochs->counter, lines.size());

    std::uint64_t refs_total = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const JsonValue &line = lines[i];
        EXPECT_EQ(line.at("epoch").asInt(),
                  static_cast<std::int64_t>(i + 1));
        EXPECT_EQ(line.at("refs").asInt(), 10'000);
        refs_total += 10'000;
        EXPECT_EQ(line.at("refs_total").asInt(),
                  static_cast<std::int64_t>(refs_total));
        EXPECT_GT(line.at("sim_ns").asDouble(), 0.0);
        EXPECT_TRUE(line.at("stats").isObject());
    }
    std::remove(result.intervalFile.c_str());
}

TEST(IntervalStats, FinalPartialEpochCoversTheTail)
{
    SimResult result = intervalRun(25'000, 10'000, "tail");
    std::vector<JsonValue> lines = readJsonLines(result.intervalFile);
    ASSERT_EQ(lines.size(), 3u); // 10k, 10k, then the 5k tail
    EXPECT_EQ(lines.back().at("refs").asInt(), 5'000);
    EXPECT_EQ(lines.back().at("refs_total").asInt(), 25'000);
    std::remove(result.intervalFile.c_str());
}

TEST(IntervalStats, CounterDeltasSumToFinalSnapshot)
{
    SimResult result = intervalRun(60'000, 7'000, "sums");
    std::vector<JsonValue> lines = readJsonLines(result.intervalFile);
    ASSERT_FALSE(lines.empty());

    // Sum every per-epoch counter delta across the series (a
    // whole-valued formula also parses back as a JSON integer, so key
    // the counter test off the final snapshot's kind)...
    std::map<std::string, std::uint64_t> sums;
    for (const JsonValue &line : lines)
        for (const auto &[name, value] : line.at("stats").members()) {
            const StatsSnapshot::Entry *entry =
                result.stats.find(name);
            ASSERT_NE(entry, nullptr) << name;
            if (entry->kind == StatsSnapshot::Kind::Counter)
                sums[name] +=
                    static_cast<std::uint64_t>(value.asInt());
        }

    // ...and every summed counter must equal its final absolute value.
    std::size_t checked = 0;
    for (const auto &[name, total] : sums) {
        EXPECT_EQ(result.stats.find(name)->counter, total) << name;
        ++checked;
    }
    EXPECT_GT(checked, 5u); // the registry has many counters
    std::remove(result.intervalFile.c_str());
}

TEST(IntervalStats, WorksUnderSwitchOnMiss)
{
    SimResult result = intervalRun(40'000, 9'000, "som", true);
    ASSERT_FALSE(result.intervalFile.empty());
    std::vector<JsonValue> lines = readJsonLines(result.intervalFile);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines.back().at("refs_total").asInt(), 40'000);

    std::map<std::string, std::uint64_t> sums;
    for (const JsonValue &line : lines)
        for (const auto &[name, value] : line.at("stats").members()) {
            const StatsSnapshot::Entry *entry =
                result.stats.find(name);
            ASSERT_NE(entry, nullptr) << name;
            if (entry->kind == StatsSnapshot::Kind::Counter)
                sums[name] +=
                    static_cast<std::uint64_t>(value.asInt());
        }
    for (const auto &[name, total] : sums)
        EXPECT_EQ(result.stats.find(name)->counter, total) << name;
    std::remove(result.intervalFile.c_str());
}

TEST(IntervalStats, PerPointFilesUnderSweepLabels)
{
    // Two labelled runs (as SweepRunner workers would label them)
    // must land in two distinct files named after the points.
    std::string base =
        std::string(::testing::TempDir()) + "/rampage_interval_sweep";
    std::vector<std::string> files;
    for (const char *label : {"fam/1KB", "fam/4KB"}) {
        ObsPointLabelScope scope(label);
        SimConfig sim;
        sim.maxRefs = 20'000;
        sim.quantumRefs = 10'000;
        sim.statsIntervalRefs = 10'000;
        sim.intervalOutBase = base;
        auto hier = makeHierarchy(rampageConfig(oneGhz, 4 * kib));
        Simulator simulator(*hier, tinyWorkload(), sim);
        SimResult result = simulator.run();
        ASSERT_FALSE(result.intervalFile.empty());
        files.push_back(result.intervalFile);
    }
    EXPECT_NE(files[0], files[1]);
    EXPECT_NE(files[0].find("fam_1KB"), std::string::npos);
    EXPECT_NE(files[1].find("fam_4KB"), std::string::npos);
    for (const std::string &file : files) {
        EXPECT_FALSE(readJsonLines(file).empty());
        std::remove(file.c_str());
    }
}

} // namespace
} // namespace rampage
