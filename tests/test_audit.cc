/**
 * @file
 * Tests for the runtime model-integrity audits and the model-level
 * fault injector: clean runs at every audit level across all three
 * hierarchies, one injected fault per checker proving it fires, the
 * end-to-end Simulator injection path, and the SweepRunner's
 * audit-failed outcome and checkpoint forensics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/audit.hh"
#include "core/conventional.hh"
#include "core/fault_injection.hh"
#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "os/scheduler.hh"
#include "trace/synthetic.hh"
#include "util/audit.hh"
#include "util/error.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

std::vector<std::unique_ptr<TraceSource>>
tinyWorkload(int programs = 3)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (int i = 0; i < programs; ++i) {
        ProgramProfile profile;
        profile.name = "tiny" + std::to_string(i);
        profile.seed = 100 + i;
        profile.heapBytes = 256 * kib;
        sources.push_back(std::make_unique<SyntheticProgram>(
            profile, static_cast<Pid>(i)));
    }
    return sources;
}

SimConfig
tinySim(std::uint64_t refs = 60'000, std::uint64_t quantum = 10'000)
{
    SimConfig sim;
    sim.maxRefs = refs;
    sim.quantumRefs = quantum;
    sim.watchdogRefBudget = refs * 8 + 1'000'000;
    return sim;
}

RampageConfig
smallRampage(bool switch_on_miss = false)
{
    RampageConfig cfg = rampageConfig(oneGhz, 1024, switch_on_miss);
    cfg.pager.baseSramBytes = 256 * kib;
    return cfg;
}

PagedConfig
smallVar()
{
    // A genuinely per-pid configuration: the default page spans two
    // base frames, so the config cannot normalize down to the uniform
    // policy (which would make var-owner-drop inapplicable).
    PagedConfig cfg;
    cfg.common = defaultCommon(oneGhz);
    cfg.pager.pageBytes = 512; // base frame size
    cfg.pager.defaultPageBytes = 1024;
    cfg.pager.baseSramBytes = 512 * kib;
    return cfg;
}

/** Populate live state: a short unaudited blocking run. */
void
warmUp(Hierarchy &hier, std::uint64_t refs = 30'000)
{
    Simulator sim(hier, tinyWorkload(), tinySim(refs, 10'000));
    sim.run();
}

/** Audit once; return the violation list (empty when clean). */
std::vector<AuditViolation>
auditViolations(const Hierarchy &hier)
{
    Auditor auditor(AuditLevel::Boundaries);
    try {
        auditor.auditHierarchy(hier, "test audit");
    } catch (const AuditError &e) {
        return e.violations();
    }
    return {};
}

bool
hasInvariant(const std::vector<AuditViolation> &violations,
             const std::string &name)
{
    for (const AuditViolation &violation : violations)
        if (violation.invariant == name)
            return true;
    return false;
}

// ---------------------------------------------------------- level parsing

TEST(AuditLevelParse, KnownNames)
{
    EXPECT_EQ(parseAuditLevel("off"), AuditLevel::Off);
    EXPECT_EQ(parseAuditLevel("boundaries"), AuditLevel::Boundaries);
    EXPECT_EQ(parseAuditLevel("paranoid"), AuditLevel::Paranoid);
    EXPECT_STREQ(auditLevelName(AuditLevel::Paranoid), "paranoid");
}

TEST(AuditLevelParse, UnknownNameThrows)
{
    EXPECT_THROW(parseAuditLevel("extreme"), ConfigError);
    EXPECT_THROW(parseAuditLevel(""), ConfigError);
}

TEST(FaultPlanParse, Specs)
{
    EXPECT_EQ(parseFaultPlan("").kind, ModelFault::None);
    EXPECT_EQ(parseFaultPlan("none").kind, ModelFault::None);

    FaultPlan plan = parseFaultPlan("l1-tag-flip");
    EXPECT_EQ(plan.kind, ModelFault::L1TagFlip);
    EXPECT_EQ(plan.seed, 1u);

    plan = parseFaultPlan("dir-alias:7");
    EXPECT_EQ(plan.kind, ModelFault::DirAlias);
    EXPECT_EQ(plan.seed, 7u);

    EXPECT_STREQ(modelFaultName(ModelFault::SkewCycles), "skew-cycles");
}

TEST(FaultPlanParse, BadSpecsThrow)
{
    EXPECT_THROW(parseFaultPlan("tag-smash"), ConfigError);
    EXPECT_THROW(parseFaultPlan("l1-tag-flip:"), ConfigError);
    EXPECT_THROW(parseFaultPlan("l1-tag-flip:x"), ConfigError);
}

TEST(AuditConfig, ArmedSimConfigIsHardened)
{
    SimConfig sim = armedSimConfig(1'000, 100);
    EXPECT_EQ(sim.maxRefs, 1'000u);
    EXPECT_EQ(sim.quantumRefs, 100u);
    EXPECT_GT(sim.watchdogRefBudget, 0u);
}

// ------------------------------------------------------------- clean runs

TEST(AuditClean, ConventionalParanoid)
{
    auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.auditLevel = AuditLevel::Paranoid;
    Simulator driver(hier, tinyWorkload(), sim);
    SimResult result;
    EXPECT_NO_THROW(result = driver.run());
    const StatsSnapshot::Entry *runs = result.stats.find("audit.runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_GT(runs->counter, 0u);
    const StatsSnapshot::Entry *checks =
        result.stats.find("audit.checks");
    ASSERT_NE(checks, nullptr);
    EXPECT_GT(checks->counter, 0u);
}

TEST(AuditClean, RampageParanoid)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.auditLevel = AuditLevel::Paranoid;
    Simulator driver(hier, tinyWorkload(), sim);
    EXPECT_NO_THROW(driver.run());
}

TEST(AuditClean, RampageSwitchOnMissParanoid)
{
    auto hier_owner = makeHierarchy(smallRampage(true));
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.switchOnMiss = true;
    sim.auditLevel = AuditLevel::Paranoid;
    Simulator driver(hier, tinyWorkload(), sim);
    EXPECT_NO_THROW(driver.run());
}

TEST(AuditClean, VarRampageParanoid)
{
    auto hier_owner = makeHierarchy(smallVar());
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.auditLevel = AuditLevel::Paranoid;
    Simulator driver(hier, tinyWorkload(), sim);
    EXPECT_NO_THROW(driver.run());
}

TEST(AuditClean, AuditedRunIsByteIdentical)
{
    // Audits must be side-effect-free: the paranoid run's entire
    // outcome (timeline and every event count) matches the unaudited
    // run exactly.
    auto run = [](AuditLevel level) {
        auto hier_owner = makeHierarchy(smallRampage());
        Hierarchy &hier = *hier_owner;
        SimConfig sim = tinySim();
        sim.auditLevel = level;
        Simulator driver(hier, tinyWorkload(), sim);
        return driver.run();
    };
    SimResult off = run(AuditLevel::Off);
    SimResult paranoid = run(AuditLevel::Paranoid);
    EXPECT_EQ(off.elapsedPs, paranoid.elapsedPs);
    EXPECT_EQ(off.counts.refs, paranoid.counts.refs);
    EXPECT_EQ(off.counts.l2Misses, paranoid.counts.l2Misses);
    EXPECT_EQ(off.counts.tlbMisses, paranoid.counts.tlbMisses);
    EXPECT_EQ(off.counts.dramReads, paranoid.counts.dramReads);
    EXPECT_EQ(off.counts.dramPs, paranoid.counts.dramPs);
    EXPECT_EQ(off.counts.overheadRefs, paranoid.counts.overheadRefs);
}

TEST(AuditClean, OffRunCarriesNoAuditStats)
{
    auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
    Hierarchy &hier = *hier_owner;
    Simulator driver(hier, tinyWorkload(), tinySim(20'000, 10'000));
    SimResult result = driver.run();
    EXPECT_EQ(result.stats.find("audit.runs"), nullptr);
    EXPECT_EQ(result.stats.find("audit.checks"), nullptr);
}

// ------------------------------------------- one fault per checker fires

TEST(AuditFault, L1TagFlipBreaksRampageInclusion)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("l1-tag-flip"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "inclusion.l1"));
}

TEST(AuditFault, L1TagFlipBreaksConventionalInclusion)
{
    auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("l1-tag-flip"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "inclusion.l1"));
}

TEST(AuditFault, L2TagFlipOrphansL1Block)
{
    auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("l2-tag-flip"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "inclusion.l1"));
}

TEST(AuditFault, TlbFrameXorBreaksBackingRampage)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("tlb-frame-xor"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "tlb.backing"));
}

TEST(AuditFault, TlbFrameXorBreaksBackingConventional)
{
    auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("tlb-frame-xor"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "tlb.backing"));
}

TEST(AuditFault, IptUnlinkBreaksChain)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("ipt-unlink"));
    ASSERT_TRUE(injector.apply(hier));
    std::vector<AuditViolation> violations = auditViolations(hier);
    EXPECT_TRUE(hasInvariant(violations, "ipt.chain"));
    EXPECT_TRUE(hasInvariant(violations, "ipt.count"));
}

TEST(AuditFault, StaleDirtyBitIsCaught)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("stale-dirty"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(
        hasInvariant(auditViolations(hier), "pager.stale_dirty"));
}

TEST(AuditFault, LeakedFrameIsCaught)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("leak-frame"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "pager.leak"));
}

TEST(AuditFault, DirAliasIsCaughtRampage)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("dir-alias"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "dir.alias"));
}

TEST(AuditFault, DirAliasIsCaughtConventional)
{
    auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("dir-alias"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "dir.alias"));
}

TEST(AuditFault, VarOwnerDropBreaksFrameMap)
{
    auto hier_owner = makeHierarchy(smallVar());
    Hierarchy &hier = *hier_owner;
    warmUp(hier);
    FaultInjector injector(parseFaultPlan("var-owner-drop"));
    ASSERT_TRUE(injector.apply(hier));
    EXPECT_TRUE(hasInvariant(auditViolations(hier), "var.frame_map"));
}

TEST(AuditFault, SkewedCyclesBreakTimeConservation)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    Simulator driver(hier, tinyWorkload(), tinySim());
    SimResult result = driver.run();

    Auditor auditor(AuditLevel::Boundaries);
    // Clean state re-prices exactly...
    EXPECT_NO_THROW(
        auditor.auditBlocking(hier, result.elapsedPs, "clean"));

    // ...and a skewed accumulator is caught immediately.
    FaultInjector injector(parseFaultPlan("skew-cycles"));
    ASSERT_TRUE(injector.apply(hier));
    try {
        auditor.auditBlocking(hier, result.elapsedPs, "skewed");
        FAIL() << "skewed cycle accumulator passed the audit";
    } catch (const AuditError &e) {
        EXPECT_TRUE(hasInvariant(e.violations(), "time.conservation"));
    }
}

TEST(AuditFault, SchedBlockBreaksQueueAudit)
{
    Scheduler sched(3, 1'000);
    AuditContext clean("clean scheduler");
    sched.auditState(clean, 0);
    EXPECT_TRUE(clean.clean());

    FaultInjector injector(parseFaultPlan("sched-block"));
    ASSERT_TRUE(injector.applyScheduler(sched, 0));
    AuditContext ctx("corrupted scheduler");
    sched.auditState(ctx, 0);
    EXPECT_FALSE(ctx.clean());
    EXPECT_TRUE(hasInvariant(ctx.violations(), "sched.queue"));
}

TEST(AuditFault, InapplicableFaultInjectsNothing)
{
    // ipt-unlink targets the RAMpage pager; on a conventional
    // hierarchy the injector warns, applies nothing, and the state
    // stays clean.
    auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
    Hierarchy &hier = *hier_owner;
    warmUp(hier, 20'000);
    FaultInjector injector(parseFaultPlan("ipt-unlink"));
    EXPECT_FALSE(injector.apply(hier));
    EXPECT_FALSE(injector.pending());
    EXPECT_TRUE(auditViolations(hier).empty());
}

// ------------------------------------------------ end-to-end injection

TEST(AuditEndToEnd, SimulatorInjectsAndAuditCatches)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.auditLevel = AuditLevel::Boundaries;
    sim.faultPlan = "ipt-unlink";
    Simulator driver(hier, tinyWorkload(), sim);
    try {
        driver.run();
        FAIL() << "injected ipt-unlink escaped the boundary audits";
    } catch (const AuditError &e) {
        EXPECT_FALSE(e.violations().empty());
        EXPECT_TRUE(hasInvariant(e.violations(), "ipt.chain"));
    }
}

TEST(AuditEndToEnd, SkewCyclesCaughtAtNextBoundary)
{
    auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.auditLevel = AuditLevel::Boundaries;
    sim.faultPlan = "skew-cycles";
    Simulator driver(hier, tinyWorkload(), sim);
    try {
        driver.run();
        FAIL() << "injected cycle skew escaped the boundary audits";
    } catch (const AuditError &e) {
        EXPECT_EQ(e.firstInvariant(), "time.conservation");
    }
}

TEST(AuditEndToEnd, SchedBlockCaughtInSwitchOnMissRun)
{
    auto hier_owner = makeHierarchy(smallRampage(true));
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.switchOnMiss = true;
    sim.auditLevel = AuditLevel::Boundaries;
    sim.faultPlan = "sched-block";
    Simulator driver(hier, tinyWorkload(), sim);
    try {
        driver.run();
        FAIL() << "blocked-but-running process escaped the audits";
    } catch (const AuditError &e) {
        EXPECT_TRUE(hasInvariant(e.violations(), "sched.queue"));
    }
}

TEST(AuditEndToEnd, FaultWithAuditsOffRunsToCompletion)
{
    // The injector corrupts state but nobody audits: the run ends
    // normally.  This is exactly the silent-corruption scenario the
    // audits exist to close.
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.faultPlan = "stale-dirty";
    Simulator driver(hier, tinyWorkload(), sim);
    EXPECT_NO_THROW(driver.run());
}

TEST(AuditEndToEnd, BadFaultSpecRejectedAtConstruction)
{
    auto hier_owner = makeHierarchy(smallRampage());
    Hierarchy &hier = *hier_owner;
    SimConfig sim = tinySim();
    sim.faultPlan = "smash-everything";
    EXPECT_THROW(Simulator(hier, tinyWorkload(), sim), ConfigError);
}

// ------------------------------------------------------- context limits

TEST(AuditContextLimits, TruncatesRecordedViolations)
{
    AuditContext ctx("truncation test");
    for (int i = 0; i < 40; ++i)
        ctx.check(false, "test.flood", "violation %d", i);
    EXPECT_FALSE(ctx.clean());
    try {
        ctx.raiseIfViolated();
        FAIL() << "40 violations did not raise";
    } catch (const AuditError &e) {
        // 16 recorded + the audit.truncated marker.
        EXPECT_EQ(e.violations().size(), 17u);
        EXPECT_EQ(e.violations().back().invariant, "audit.truncated");
    }
}

// ---------------------------------------------------------- sweep runner

TEST(AuditSweep, AuditFailureIsDistinctOutcome)
{
    std::string manifest =
        ::testing::TempDir() + "rampage_audit_manifest.txt";
    std::remove(manifest.c_str());

    SweepRunner::Options opts;
    opts.checkpointPath = manifest;

    auto faultyPoint = [] {
        auto hier_owner = makeHierarchy(smallRampage());
        Hierarchy &hier = *hier_owner;
        SimConfig sim = tinySim();
        sim.auditLevel = AuditLevel::Boundaries;
        sim.faultPlan = "leak-frame";
        Simulator driver(hier, tinyWorkload(), sim);
        return driver.run();
    };
    auto cleanPoint = [] {
        auto hier_owner = makeHierarchy(baselineConfig(oneGhz, 128));
        Hierarchy &hier = *hier_owner;
        Simulator driver(hier, tinyWorkload(),
                         tinySim(20'000, 10'000));
        return driver.run();
    };

    SweepRunner runner(opts);
    runner.add("faulty", faultyPoint);
    runner.add("clean", cleanPoint);
    SweepReport report = runner.run();

    ASSERT_EQ(report.outcomes.size(), 2u);
    const PointOutcome &faulty = report.outcomes[0];
    EXPECT_EQ(faulty.status, PointStatus::AuditFailed);
    EXPECT_EQ(faulty.errorCategory, ErrorCategory::Audit);
    EXPECT_EQ(faulty.auditInvariant, "pager.leak");
    EXPECT_FALSE(faulty.error.empty());
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Ok);

    EXPECT_EQ(report.auditFailedCount(), 1u);
    EXPECT_EQ(report.failedCount(), 0u);
    EXPECT_FALSE(report.allOk());

    // The manifest carries the forensic audit line naming the
    // violated invariant...
    std::ifstream in(manifest);
    ASSERT_TRUE(in.is_open());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("audit "), std::string::npos);
    EXPECT_NE(text.find("invariant=pager.leak"), std::string::npos);
    EXPECT_NE(text.find("id=faulty"), std::string::npos);

    // ...and does NOT mark the point done: a resumed campaign re-runs
    // it (here with the fault gone) while skipping the ok point.
    SweepRunner resumed(opts);
    resumed.add("faulty", cleanPoint);
    resumed.add("clean", cleanPoint);
    SweepReport second = resumed.run();
    EXPECT_EQ(second.outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(second.outcomes[1].status, PointStatus::Skipped);
    EXPECT_TRUE(second.allOk());

    std::remove(manifest.c_str());
}

} // namespace
} // namespace rampage
