/**
 * @file
 * Behavioural tests for the conventional cache hierarchy (§4.4/§4.7):
 * timing per the paper's cost model, TLB interleaving, inclusion
 * maintenance and write-back traffic.
 */

#include <gtest/gtest.h>

#include "core/conventional.hh"
#include "core/sweep.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

MemRef
fetch(Addr addr, Pid pid = 0)
{
    return MemRef{addr, RefKind::IFetch, pid};
}

MemRef
load(Addr addr, Pid pid = 0)
{
    return MemRef{addr, RefKind::Load, pid};
}

MemRef
store(Addr addr, Pid pid = 0)
{
    return MemRef{addr, RefKind::Store, pid};
}

TEST(Conventional, FirstFetchPaysTlbL1L2AndDram)
{
    ConventionalHierarchy hier(baselineConfig(oneGhz, 128));
    auto out = hier.access(fetch(0x400000));
    const EventCounts &c = hier.counts();
    EXPECT_EQ(c.tlbMisses, 1u);
    // The handler trace itself misses L1/L2 cold, so misses and DRAM
    // reads exceed the user reference's own: at least one 128 B read
    // (50 ns + 64 beats = 130 ns) apiece.
    EXPECT_GE(c.l1iMisses, 1u);
    EXPECT_GE(c.l2Misses, 1u);
    EXPECT_GE(c.dramReads, 1u);
    EXPECT_GE(c.dramPs, 130'000u);
    EXPECT_EQ(c.dramPs, c.dramReads * 130'000u + c.dramWrites * 130'000u);
    // The TLB-miss handler interleaved real references.
    EXPECT_GT(c.overheadRefs, 0u);
    EXPECT_GT(out.cpuPs, 130'000u);
    EXPECT_EQ(out.deferPs, 0u); // conventional never defers
}

TEST(Conventional, SteadyStateFetchCostsOneCycle)
{
    ConventionalHierarchy hier(baselineConfig(oneGhz, 128));
    hier.access(fetch(0x400000)); // warm everything
    auto out = hier.access(fetch(0x400004));
    // Same L1 block, TLB warm: exactly one issue cycle (1000 ps).
    EXPECT_EQ(out.cpuPs, 1000u);
}

TEST(Conventional, DataHitIsFree)
{
    ConventionalHierarchy hier(baselineConfig(oneGhz, 128));
    hier.access(load(0x10000000)); // warm TLB + caches
    auto out = hier.access(load(0x10000004));
    // §4.3: TLB and L1 data hits are fully pipelined.
    EXPECT_EQ(out.cpuPs, 0u);
}

TEST(Conventional, L1MissL2HitCostsTwelveCycles)
{
    ConventionalHierarchy hier(baselineConfig(oneGhz, 4096));
    hier.access(load(0x10000000)); // fills a whole 4 KB L2 block
    std::uint64_t misses_before = hier.counts().l2Misses;
    std::uint64_t accesses_before = hier.counts().l2Accesses;
    // A different L1 block within the same L2 block: L1 miss, L2 hit.
    auto out = hier.access(load(0x10000400));
    EXPECT_EQ(out.cpuPs, 12'000u); // 12 cycles at 1 GHz
    EXPECT_EQ(hier.counts().l2Misses, misses_before);
    EXPECT_EQ(hier.counts().l2Accesses, accesses_before + 1);
}

TEST(Conventional, StoreHitBuffersPerfectly)
{
    ConventionalHierarchy hier(baselineConfig(oneGhz, 128));
    hier.access(load(0x10000000));
    auto out = hier.access(store(0x10000008));
    EXPECT_EQ(out.cpuPs, 0u); // perfect write buffering (§4.3)
}

TEST(Conventional, DirtyL1VictimWritesBack)
{
    ConventionalConfig cfg = baselineConfig(oneGhz, 4096);
    ConventionalHierarchy hier(cfg);
    // Dirty one L1 block, then load the same page offset of many
    // other pages: page placement is randomized, but 64 pages over
    // the 4 page-sized L1 column slots make a conflict with the
    // dirty block (and hence a write-back) a statistical certainty.
    hier.access(store(0x10000000)); // miss, allocate, dirty
    std::uint64_t wb_before = hier.counts().l1Writebacks;
    for (Addr page = 1; page <= 64; ++page)
        hier.access(load(0x10000000 + page * 4096));
    EXPECT_GE(hier.counts().l1Writebacks, wb_before + 1);
}

TEST(Conventional, InclusionInvariantUnderRandomTraffic)
{
    // Property: every valid L1 block is contained in an L2 block
    // (inclusion, §4.3).  Drive random traffic, then audit by probing
    // both against a recorded address set.
    ConventionalHierarchy hier(twoWayConfig(oneGhz, 256));
    Rng rng(17);
    std::vector<Addr> addrs;
    for (int i = 0; i < 30000; ++i) {
        Addr vaddr = 0x10000000 + (rng.below(1 << 22) & ~Addr{3});
        addrs.push_back(vaddr);
        MemRef ref;
        ref.vaddr = vaddr;
        ref.pid = 0;
        double kind = rng.unit();
        ref.kind = kind < 0.5 ? RefKind::Load
                   : kind < 0.75 ? RefKind::Store
                                 : RefKind::IFetch;
        hier.access(ref);
    }
    // Audit: anything in L1 must be in L2.  We can't recover the
    // physical address from the virtual trivially here, so probe the
    // caches over the L2's full index space via the recorded set.
    // Instead, use the hierarchies' own caches: walk the L1 by
    // probing each recorded address through the same translation the
    // hierarchy used (the directory is deterministic).
    auto &dir = const_cast<DramDirectory &>(hier.directory());
    unsigned violations = 0;
    for (Addr vaddr : addrs) {
        Addr paddr = dir.physAddr(0, vaddr);
        if ((hier.l1i().probe(paddr) || hier.l1d().probe(paddr)) &&
            !hier.l2().probe(paddr))
            ++violations;
    }
    EXPECT_EQ(violations, 0u);
}

TEST(Conventional, TlbMissRateDropsWhenWarm)
{
    ConventionalHierarchy hier(baselineConfig(oneGhz, 128));
    // Loop over 16 pages; after the first pass the 64-entry TLB holds
    // them all.
    for (int round = 0; round < 10; ++round)
        for (Addr page = 0; page < 16; ++page)
            hier.access(load(0x10000000 + page * 4096));
    EXPECT_EQ(hier.counts().tlbMisses, 16u);
}

TEST(Conventional, DistinctPidsDoNotShareTranslations)
{
    ConventionalHierarchy hier(baselineConfig(oneGhz, 128));
    hier.access(load(0x10000000, 1));
    hier.access(load(0x10000000, 2));
    EXPECT_EQ(hier.counts().tlbMisses, 2u);
}

TEST(Conventional, TwoWayReducesConflictMisses)
{
    // Two physical pages that collide in a direct-mapped L2 ping-pong
    // under alternation; 2-way absorbs them.  Generate enough random
    // pages that collisions certainly occur.
    auto run = [](unsigned assoc) {
        ConventionalConfig cfg = baselineConfig(oneGhz, 4096);
        cfg.l2Assoc = assoc;
        cfg.l2Repl = ReplPolicy::LRU;
        ConventionalHierarchy hier(cfg);
        Rng rng(5);
        std::vector<Addr> pages;
        for (int i = 0; i < 2500; ++i)
            pages.push_back(0x10000000 + rng.below(1 << 24));
        for (int round = 0; round < 4; ++round)
            for (Addr page : pages)
                hier.access(load(page & ~Addr{3}));
        return hier.counts().l2Misses;
    };
    EXPECT_GT(run(1), run(2));
}

TEST(Conventional, VictimCacheRecoversConflictMisses)
{
    auto run = [](unsigned victim_entries) {
        ConventionalConfig cfg = baselineConfig(oneGhz, 4096);
        cfg.victimEntries = victim_entries;
        ConventionalHierarchy hier(cfg);
        Rng rng(5);
        std::vector<Addr> pages;
        for (int i = 0; i < 2000; ++i)
            pages.push_back(0x10000000 + rng.below(1 << 24));
        for (int round = 0; round < 4; ++round)
            for (Addr page : pages)
                hier.access(load(page & ~Addr{3}));
        return hier.counts();
    };
    EventCounts plain = run(0);
    EventCounts with_victim = run(8);
    EXPECT_GT(with_victim.victimCacheHits, 0u);
    EXPECT_LT(with_victim.dramReads, plain.dramReads);
}

TEST(Conventional, ContextSwitchTraceCharged)
{
    ConventionalHierarchy hier(baselineConfig(oneGhz, 128));
    Tick t = hier.runContextSwitchTrace();
    EXPECT_GT(t, 0u);
    EXPECT_EQ(hier.counts().contextSwitches, 1u);
    // ~400 references, none counted as TLB/fault overhead (Fig 4).
    EXPECT_GE(hier.counts().overheadRefs, 380u);
    EXPECT_EQ(hier.counts().tlbMissOverheadRefs, 0u);
}

TEST(Conventional, NamesReflectGeometry)
{
    EXPECT_EQ(ConventionalHierarchy(baselineConfig(oneGhz, 128)).name(),
              "baseline");
    EXPECT_EQ(ConventionalHierarchy(twoWayConfig(oneGhz, 128)).name(),
              "2-way L2");
    EXPECT_EQ(ConventionalHierarchy(baselineConfig(oneGhz, 128)).l2Name(),
              "L2");
}

} // namespace
} // namespace rampage
