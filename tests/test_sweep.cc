/**
 * @file
 * Tests for the experiment scaffolding: environment-driven scale,
 * issue-rate lists and the canonical §4 configurations.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/sweep.hh"
#include "util/error.hh"

namespace rampage
{
namespace
{

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : varName(name)
    {
        const char *old = std::getenv(name);
        hadOld = old != nullptr;
        if (hadOld)
            oldValue = old;
        ::setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(varName.c_str(), oldValue.c_str(), 1);
        else
            ::unsetenv(varName.c_str());
    }

  private:
    std::string varName;
    std::string oldValue;
    bool hadOld;
};

TEST(Sweep, DefaultScale)
{
    ::unsetenv("RAMPAGE_REFS");
    ::unsetenv("RAMPAGE_QUANTUM");
    ::unsetenv("RAMPAGE_FULL");
    ExperimentScale scale = experimentScale();
    EXPECT_EQ(scale.refs, 24'000'000u);
    EXPECT_EQ(scale.quantumRefs, 120'000u);
}

TEST(Sweep, EnvOverridesScale)
{
    ScopedEnv refs("RAMPAGE_REFS", "5000000");
    ScopedEnv quantum("RAMPAGE_QUANTUM", "50000");
    ExperimentScale scale = experimentScale();
    EXPECT_EQ(scale.refs, 5'000'000u);
    EXPECT_EQ(scale.quantumRefs, 50'000u);
}

TEST(Sweep, FullScaleIsPaperScale)
{
    ScopedEnv full("RAMPAGE_FULL", "1");
    ::unsetenv("RAMPAGE_REFS");
    ::unsetenv("RAMPAGE_QUANTUM");
    ExperimentScale scale = experimentScale();
    EXPECT_EQ(scale.refs, 1'100'000'000u); // §4.2
    EXPECT_EQ(scale.quantumRefs, 500'000u);
}

TEST(Sweep, ExplicitRefsBeatFullScale)
{
    ScopedEnv full("RAMPAGE_FULL", "1");
    ScopedEnv refs("RAMPAGE_REFS", "7");
    EXPECT_EQ(experimentScale().refs, 7u);
}

TEST(Sweep, DefaultRatesSpanPaperSweep)
{
    ::unsetenv("RAMPAGE_RATES");
    auto rates = issueRates();
    ASSERT_GE(rates.size(), 3u);
    EXPECT_EQ(rates.front(), 200'000'000u);  // §4.3 low end
    EXPECT_EQ(rates.back(), 4'000'000'000u); // §4.3 high end
    for (std::size_t i = 1; i < rates.size(); ++i)
        EXPECT_GT(rates[i], rates[i - 1]);
}

TEST(Sweep, RatesFromEnv)
{
    ScopedEnv env("RAMPAGE_RATES", "250MHz,1GHz");
    auto rates = issueRates();
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_EQ(rates[0], 250'000'000u);
    EXPECT_EQ(rates[1], 1'000'000'000u);
}

/** The ConfigError must name the variable and echo the bad text. */
void
expectScaleRejects(const char *var, const char *value)
{
    ScopedEnv env(var, value);
    try {
        experimentScale();
        FAIL() << var << "=" << value << " was accepted";
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find(var), std::string::npos) << what;
        EXPECT_NE(what.find(value), std::string::npos) << what;
    }
}

TEST(Sweep, RejectsNonNumericScale)
{
    // strtoull alone parses "abc" as 0 without setting errno; the
    // validated parser must refuse it instead.
    expectScaleRejects("RAMPAGE_REFS", "abc");
    expectScaleRejects("RAMPAGE_QUANTUM", "abc");
}

TEST(Sweep, RejectsTrailingJunkInScale)
{
    // "24x" silently truncates to 24 under bare strtoull.
    expectScaleRejects("RAMPAGE_REFS", "24x");
    expectScaleRejects("RAMPAGE_QUANTUM", "24x");
}

TEST(Sweep, RejectsSignedScale)
{
    // "-5" wraps to a huge unsigned value under bare strtoull.
    expectScaleRejects("RAMPAGE_REFS", "-5");
    expectScaleRejects("RAMPAGE_QUANTUM", "-5");
}

TEST(Sweep, RejectsOutOfRangeScale)
{
    expectScaleRejects("RAMPAGE_REFS", "99999999999999999999999999");
}

TEST(Sweep, RejectsZeroScale)
{
    ScopedEnv refs("RAMPAGE_REFS", "0");
    EXPECT_THROW(experimentScale(), ConfigError);
}

TEST(Sweep, RatesErrorNamesVariable)
{
    ScopedEnv env("RAMPAGE_RATES", "1GHz,garbage");
    try {
        issueRates();
        FAIL() << "RAMPAGE_RATES=1GHz,garbage was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("RAMPAGE_RATES"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Sweep, ParseJobsValidates)
{
    EXPECT_EQ(parseJobs("1"), 1u);
    EXPECT_EQ(parseJobs("4"), 4u);
    EXPECT_EQ(parseJobs("256"), maxSweepJobs);
    EXPECT_THROW(parseJobs("abc"), ConfigError);
    EXPECT_THROW(parseJobs("4x"), ConfigError);
    EXPECT_THROW(parseJobs("-2"), ConfigError);
    EXPECT_THROW(parseJobs("0"), ConfigError);
    EXPECT_THROW(parseJobs("257"), ConfigError);
    EXPECT_THROW(parseJobs(""), ConfigError);
    try {
        parseJobs("lots", "RAMPAGE_JOBS");
        FAIL() << "parseJobs accepted 'lots'";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("RAMPAGE_JOBS"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Sweep, ResolveJobsPrecedence)
{
    // CI runs the suite with RAMPAGE_JOBS set; park it during the
    // precedence checks and let ScopedEnv put it back afterwards.
    ScopedEnv outer("RAMPAGE_JOBS", "1");
    setJobsOverride(0);
    ::unsetenv("RAMPAGE_JOBS");
    EXPECT_EQ(resolveJobs(), 1u); // serial default

    {
        ScopedEnv env("RAMPAGE_JOBS", "3");
        EXPECT_EQ(resolveJobs(), 3u);
        setJobsOverride(8); // the --jobs flag beats the environment
        EXPECT_EQ(resolveJobs(), 8u);
        setJobsOverride(0);
        EXPECT_EQ(resolveJobs(), 3u);
    }
    EXPECT_EQ(resolveJobs(), 1u);

    {
        ScopedEnv bad("RAMPAGE_JOBS", "4x");
        EXPECT_THROW(resolveJobs(), ConfigError);
    }
}

TEST(Sweep, BlockSizeSweepIsPapers)
{
    auto sizes = blockSizeSweep();
    ASSERT_EQ(sizes.size(), 6u);
    EXPECT_EQ(sizes.front(), 128u);
    EXPECT_EQ(sizes.back(), 4096u);
}

TEST(Sweep, BaselineConfigMatchesPaper)
{
    ConventionalConfig cfg = baselineConfig(200'000'000ull, 128);
    EXPECT_EQ(cfg.l2SizeBytes, 4 * mib);
    EXPECT_EQ(cfg.l2Assoc, 1u);
    EXPECT_EQ(cfg.common.l1SizeBytes, 16 * kib);
    EXPECT_EQ(cfg.common.l1BlockBytes, 32u);
    EXPECT_EQ(cfg.common.tlb.entries, 64u);
    EXPECT_EQ(cfg.common.tlb.assoc, 0u); // fully associative
    EXPECT_EQ(cfg.common.l2HitCycles, 12u);
    EXPECT_EQ(cfg.common.l1WritebackCycles, 12u);
    EXPECT_EQ(cfg.common.l1WritebackCyclesRampage, 9u);
    EXPECT_EQ(cfg.common.rambus.accessLatencyPs, 50'000u);
    EXPECT_EQ(cfg.common.rambus.bytesPerBeat, 2u);
    EXPECT_EQ(cfg.common.dramPageBytes, 4096u);
}

TEST(Sweep, TwoWayConfigMatchesPaper)
{
    ConventionalConfig cfg = twoWayConfig(1'000'000'000ull, 2048);
    EXPECT_EQ(cfg.l2Assoc, 2u);
    EXPECT_EQ(cfg.l2Repl, ReplPolicy::Random); // §4.7
    EXPECT_EQ(cfg.l2BlockBytes, 2048u);
}

TEST(Sweep, RampageConfigMatchesPaper)
{
    RampageConfig cfg = rampageConfig(1'000'000'000ull, 128, true);
    EXPECT_EQ(cfg.pager.pageBytes, 128u);
    EXPECT_EQ(cfg.pager.baseSramBytes, 4 * mib);
    EXPECT_EQ(cfg.pager.tagBytesPerBlock, 4u);
    EXPECT_EQ(cfg.pager.repl, PageReplKind::Clock);
    EXPECT_TRUE(cfg.switchOnMiss);
}

} // namespace
} // namespace rampage
