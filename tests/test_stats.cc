/**
 * @file
 * Unit tests for the stats package: histograms, running summaries,
 * table rendering and the per-level time breakdown.
 */

#include <gtest/gtest.h>

#include "stats/histogram.hh"
#include "stats/table.hh"
#include "stats/time_breakdown.hh"

namespace rampage
{
namespace
{

TEST(Log2Histogram, BucketsAndTotals)
{
    Log2Histogram hist;
    hist.add(0);
    hist.add(1);
    hist.add(2);
    hist.add(3);
    hist.add(1024, 5);

    EXPECT_EQ(hist.samples(), 9u);
    EXPECT_EQ(hist.sum(), 0u + 1 + 2 + 3 + 5 * 1024);
    EXPECT_EQ(hist.bucketFor(0), 2u);  // 0 and 1 share bucket 0
    EXPECT_EQ(hist.bucketFor(2), 2u);  // 2 and 3 share bucket 1
    EXPECT_EQ(hist.bucketFor(1024), 5u);
    EXPECT_EQ(hist.bucketFor(1 << 20), 0u); // empty bucket
}

TEST(Log2Histogram, Mean)
{
    Log2Histogram hist;
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
    hist.add(10);
    hist.add(20);
    EXPECT_DOUBLE_EQ(hist.mean(), 15.0);
}

TEST(Log2Histogram, RenderAndReset)
{
    Log2Histogram hist;
    hist.add(100);
    // 100 lands in bucket [64, 127].
    EXPECT_NE(hist.render().find("64"), std::string::npos);
    EXPECT_NE(hist.render().find("127"), std::string::npos);
    hist.reset();
    EXPECT_EQ(hist.samples(), 0u);
    EXPECT_TRUE(hist.render().empty());
}

TEST(Log2Histogram, PercentileUpperBound)
{
    Log2Histogram hist;
    EXPECT_EQ(hist.percentileUpperBound(0.5), 0u); // empty histogram

    // 90 samples in [64,127], 10 in [4096,8191].
    hist.add(100, 90);
    hist.add(5000, 10);
    EXPECT_EQ(hist.percentileUpperBound(0.5), 127u);
    EXPECT_EQ(hist.percentileUpperBound(0.9), 127u);
    EXPECT_EQ(hist.percentileUpperBound(0.91), 8191u);
    EXPECT_EQ(hist.percentileUpperBound(1.0), 8191u);

    // Out-of-range fractions clamp rather than misbehave.
    EXPECT_EQ(hist.percentileUpperBound(0.0), hist.percentileUpperBound(1e-9));
    EXPECT_EQ(hist.percentileUpperBound(2.0), 8191u);
}

TEST(Log2Histogram, BucketBoundaries)
{
    Log2Histogram hist;
    // 2^k and 2^(k+1)-1 share a bucket; 2^(k+1) starts the next one.
    hist.add(64);
    hist.add(127);
    hist.add(128);
    EXPECT_EQ(hist.bucketFor(64), 2u);
    EXPECT_EQ(hist.bucketFor(127), 2u);
    EXPECT_EQ(hist.bucketFor(128), 1u);
    EXPECT_EQ(hist.bucketFor(255), 1u);
}

TEST(RunningStats, Basics)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);

    stats.add(3.0);
    stats.add(-1.0);
    stats.add(4.0);
    EXPECT_EQ(stats.count(), 3u);
    EXPECT_DOUBLE_EQ(stats.min(), -1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
    EXPECT_DOUBLE_EQ(stats.total(), 6.0);

    stats.reset();
    EXPECT_EQ(stats.count(), 0u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer", "22"});
    std::string out = table.render();
    // Header present, separator line, both rows.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, Csv)
{
    TextTable table;
    table.setHeader({"a", "b"});
    table.addRow({"1", "2"});
    EXPECT_EQ(table.renderCsv(), "a,b\n1,2\n");
}

TEST(TextTable, Cellf)
{
    EXPECT_EQ(cellf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(cellf("%d%s", 42, "x"), "42x");
}

TEST(TimeBreakdown, FractionsSumToOne)
{
    TimeBreakdown bd;
    bd.add(TimeLevel::L1I, 100);
    bd.add(TimeLevel::L1D, 50);
    bd.add(TimeLevel::L2, 150);
    bd.add(TimeLevel::Dram, 200);
    EXPECT_EQ(bd.total(), 500u);
    double sum = 0;
    for (std::size_t i = 0; i < numTimeLevels; ++i)
        sum += bd.fraction(static_cast<TimeLevel>(i));
    EXPECT_DOUBLE_EQ(sum, 1.0);
    EXPECT_DOUBLE_EQ(bd.fraction(TimeLevel::Dram), 0.4);
}

TEST(TimeBreakdown, EmptyIsSafe)
{
    TimeBreakdown bd;
    EXPECT_EQ(bd.total(), 0u);
    EXPECT_DOUBLE_EQ(bd.fraction(TimeLevel::L2), 0.0);
}

TEST(TimeBreakdown, Accumulate)
{
    TimeBreakdown a, b;
    a.add(TimeLevel::L1I, 10);
    b.add(TimeLevel::L1I, 5);
    b.add(TimeLevel::Dram, 7);
    a += b;
    EXPECT_EQ(a.at(TimeLevel::L1I), 15u);
    EXPECT_EQ(a.at(TimeLevel::Dram), 7u);
}

TEST(TimeBreakdown, LevelNames)
{
    EXPECT_EQ(timeLevelName(TimeLevel::L1I), "L1i");
    EXPECT_EQ(timeLevelName(TimeLevel::L2, "SRAM MM"), "SRAM MM");
    EXPECT_EQ(timeLevelName(TimeLevel::Dram), "DRAM");
}

} // namespace
} // namespace rampage
