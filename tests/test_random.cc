/**
 * @file
 * Unit tests for util/random.hh: determinism, range correctness and
 * coarse distribution sanity — the whole simulator's reproducibility
 * rests on this generator.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/random.hh"

namespace rampage
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull,
                                1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UnitInHalfOpenInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.unit();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; 10k samples => stddev ~0.003.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(Rng, ChanceRate)
{
    Rng rng(19);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SkewedBelowRange)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.skewedBelow(1000, 0.1, 0.9), 1000u);
}

TEST(Rng, SkewedBelowConcentratesInHotRegion)
{
    Rng rng(29);
    const std::uint64_t bound = 10000;
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.skewedBelow(bound, 0.1, 0.9) < bound / 10)
            ++hot;
    // ~0.9 + 0.1*0.1 = 91 % of draws land in the hot tenth.
    EXPECT_GT(static_cast<double>(hot) / n, 0.85);
}

} // namespace
} // namespace rampage
