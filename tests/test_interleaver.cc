/**
 * @file
 * Tests for the multiprogramming interleaver (paper §4.2).
 */

#include <gtest/gtest.h>

#include <memory>

#include "trace/interleaver.hh"

namespace rampage
{
namespace
{

/** A tiny finite source emitting `count` refs tagged with its pid. */
class CountingSource : public TraceSource
{
  public:
    CountingSource(Pid pid, std::uint64_t count)
        : myPid(pid), total(count)
    {
    }

    bool
    next(MemRef &ref) override
    {
        if (emitted >= total)
            return false;
        ref.vaddr = emitted * 4;
        ref.kind = RefKind::IFetch;
        ref.pid = myPid;
        ++emitted;
        return true;
    }

    void reset() override { emitted = 0; }
    std::string name() const override { return "counting"; }
    Pid pid() const override { return myPid; }

  private:
    Pid myPid;
    std::uint64_t total;
    std::uint64_t emitted = 0;
};

std::vector<std::unique_ptr<TraceSource>>
makeSources(int n, std::uint64_t len)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (int i = 0; i < n; ++i)
        sources.push_back(
            std::make_unique<CountingSource>(static_cast<Pid>(i), len));
    return sources;
}

TEST(Interleaver, SwitchesEveryQuantum)
{
    Interleaver il(makeSources(3, 1000), 10);
    MemRef ref;
    for (int slice = 0; slice < 6; ++slice) {
        for (int i = 0; i < 10; ++i) {
            ASSERT_TRUE(il.next(ref));
            ASSERT_EQ(ref.pid, slice % 3);
            // The switch flag fires exactly on the first ref of a
            // slice.
            ASSERT_EQ(il.switchedProcess(), i == 0);
        }
    }
    EXPECT_EQ(il.switchCount(), 6u);
}

TEST(Interleaver, ReplaysExhaustedSources)
{
    // Source shorter than the quantum: it must rewind mid-slice.
    Interleaver il(makeSources(1, 5), 100);
    MemRef ref;
    for (int i = 0; i < 23; ++i)
        ASSERT_TRUE(il.next(ref));
    EXPECT_EQ(ref.vaddr, (23 - 1) % 5 * 4u);
}

TEST(Interleaver, ResetRestoresInitialState)
{
    Interleaver il(makeSources(2, 100), 7);
    MemRef ref;
    std::vector<Addr> first;
    for (int i = 0; i < 30; ++i) {
        il.next(ref);
        first.push_back(ref.vaddr);
    }
    il.reset();
    EXPECT_EQ(il.switchCount(), 0u);
    for (int i = 0; i < 30; ++i) {
        il.next(ref);
        ASSERT_EQ(ref.vaddr, first[i]);
    }
}

TEST(Interleaver, CurrentPidTracksSchedule)
{
    Interleaver il(makeSources(2, 100), 3);
    MemRef ref;
    il.next(ref);
    EXPECT_EQ(il.pid(), 0);
    il.next(ref);
    il.next(ref);
    il.next(ref); // 4th ref = new slice
    EXPECT_EQ(il.pid(), 1);
    EXPECT_EQ(il.currentIndex(), 1u);
}

TEST(Interleaver, PaperQuantum)
{
    // The paper switches every 500 000 references; verify the count
    // arithmetic holds at that scale with fast sources.
    Interleaver il(makeSources(2, 600'000), 500'000);
    MemRef ref;
    for (int i = 0; i < 1'000'000; ++i)
        il.next(ref);
    EXPECT_EQ(il.switchCount(), 2u);
}

} // namespace
} // namespace rampage
