/**
 * @file
 * Unit tests for util/bitops.hh.
 */

#include <gtest/gtest.h>

#include "util/bitops.hh"

namespace rampage
{
namespace
{

TEST(Bitops, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(4095));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 63), 63u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(4095), 12u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(Bitops, AlignDown)
{
    EXPECT_EQ(alignDown(0x12345, 12), 0x12000u);
    EXPECT_EQ(alignDown(0x12000, 12), 0x12000u);
    EXPECT_EQ(alignDown(0x12fff, 12), 0x12000u);
    EXPECT_EQ(alignDown(0xabc, 0), 0xabcu);
}

TEST(Bitops, LowBits)
{
    EXPECT_EQ(lowBits(0x12345, 12), 0x345u);
    EXPECT_EQ(lowBits(0x12345, 0), 0u);
    EXPECT_EQ(lowBits(0xffff, 8), 0xffu);
}

TEST(Bitops, AlignAndLowBitsPartition)
{
    // alignDown + lowBits reassemble the original address.
    for (Addr addr : {Addr{0}, Addr{1}, Addr{0x12345678}, ~Addr{0} >> 1}) {
        for (unsigned bits : {0u, 5u, 12u, 20u}) {
            EXPECT_EQ(alignDown(addr, bits) | lowBits(addr, bits), addr);
            EXPECT_EQ(alignDown(addr, bits) + lowBits(addr, bits), addr);
        }
    }
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(4096, 128), 32u);
}

} // namespace
} // namespace rampage
