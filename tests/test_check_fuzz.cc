/**
 * @file
 * Unit tests for the differential-fuzzing harness (src/check/): the
 * seeded generator's validity contract, the hostile-mutation
 * rejection contract, JSON repro round-tripping, oracle agreement on
 * canonical configurations, and the end-to-end acceptance drill — a
 * seeded model bug must be caught, shrink to a smaller point, and
 * replay failing after a save/load cycle.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "check/config_gen.hh"
#include "check/fuzz_driver.hh"
#include "check/properties.hh"
#include "check/repro.hh"
#include "check/shrink.hh"
#include "core/factory.hh"
#include "util/error.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

/** Property subset that keeps a unit test fast but meaningful. */
PropertyOptions
fastProperties()
{
    PropertyOptions options;
    options.sweepHarness = false;  // forks + threads: covered by ctest
    options.observability = false; // writes scratch files
    return options;
}

TEST(FuzzGenerator, GeneratedPointsAreValid)
{
    Rng rng(11);
    GenStats stats;
    for (std::uint64_t i = 0; i < 64; ++i) {
        FuzzPoint point = generatePoint(rng, 11, i, &stats);
        EXPECT_NO_THROW(validateHierarchyConfig(point.hier))
            << "point " << i;
        EXPECT_GE(point.sim.maxRefs, 1u);
        EXPECT_GE(point.sim.quantumRefs, 1u);
        EXPECT_EQ(point.generatorSeed, 11u);
        EXPECT_EQ(point.pointIndex, i);
    }
    EXPECT_GE(stats.candidates, 64u);
}

TEST(FuzzGenerator, DeterministicForSeed)
{
    Rng a(99), b(99);
    for (std::uint64_t i = 0; i < 8; ++i) {
        FuzzPoint pa = generatePoint(a, 99, i);
        FuzzPoint pb = generatePoint(b, 99, i);
        EXPECT_EQ(fuzzPointToJson(pa), fuzzPointToJson(pb))
            << "point " << i;
    }
}

TEST(FuzzGenerator, HostileMutationsRejectedWithConfigError)
{
    Rng rng(5);
    unsigned rejected = 0;
    for (std::uint64_t i = 0; i < 128; ++i) {
        FuzzPoint point = generatePoint(rng, 5, i % 16);
        HierarchyConfig corrupted = point.hier;
        std::string mutation = mutateHostile(rng, corrupted);
        try {
            validateHierarchyConfig(corrupted);
        } catch (const ConfigError &) {
            ++rejected; // the only acceptable escape
        } catch (const std::exception &err) {
            FAIL() << "mutation '" << mutation
                   << "' escaped with non-ConfigError: " << err.what();
        }
    }
    // Most hostile values must actually be invalid, or the probe
    // is not probing anything.
    EXPECT_GE(rejected, 64u);
}

TEST(FuzzRepro, JsonRoundTripIsExact)
{
    Rng rng(21);
    for (std::uint64_t i = 0; i < 16; ++i) {
        FuzzPoint point = generatePoint(rng, 21, i);
        point.faultSpec = (i % 2) ? "skew-cycles:7" : "";
        point.note = "round-trip fixture";
        std::string json = fuzzPointToJson(point);
        FuzzPoint back = fuzzPointFromJson(json);
        EXPECT_EQ(json, fuzzPointToJson(back)) << "point " << i;
    }
}

TEST(FuzzRepro, LoadRejectsMalformedInput)
{
    EXPECT_THROW(fuzzPointFromJson(""), ConfigError);
    EXPECT_THROW(fuzzPointFromJson("{}"), ConfigError);
    EXPECT_THROW(fuzzPointFromJson("{\"schema\": 99}"), ConfigError);
    EXPECT_THROW(loadFuzzPoint("no/such/file.json"), ConfigError);
}

TEST(FuzzProperties, OracleAgreesOnCanonicalPoints)
{
    // One small point per family, fixed rather than drawn, so a
    // disagreement here bisects to the oracle (not the generator).
    Rng rng(1);
    unsigned conventional = 0, paged = 0;
    for (std::uint64_t i = 0; i < 40 && (!conventional || !paged);
         ++i) {
        FuzzPoint point = generatePoint(rng, 1, i);
        bool is_conv =
            point.hier.family == HierarchyConfig::Family::Conventional;
        if ((is_conv && conventional) || (!is_conv && paged))
            continue;
        PropertyReport report = checkPoint(point, fastProperties());
        EXPECT_TRUE(report.ok())
            << "point " << i << ":\n" << report.summary();
        (is_conv ? conventional : paged) += 1;
    }
    EXPECT_EQ(conventional, 1u);
    EXPECT_EQ(paged, 1u);
}

TEST(FuzzAcceptance, SeededBugShrinksAndReplaysFailing)
{
    // The drill from the issue: seed a model bug, require the suite
    // to catch it, shrink it, and require the saved repro to replay
    // failing after a round trip through JSON.
    Rng rng(3);
    FuzzPoint point = generatePoint(rng, 3, 0);
    point.faultSpec = "skew-cycles";

    PropertyOptions options = fastProperties();
    options.audit = true;
    PropertyReport report = checkPoint(point, options);
    ASSERT_FALSE(report.ok()) << "injected fault went undetected";

    ShrinkOptions shrink_options;
    shrink_options.maxEvaluations = 60;
    shrink_options.properties = options;
    ShrinkResult shrunk = shrinkPoint(point, shrink_options);
    EXPECT_GT(shrunk.accepted, 0u);
    EXPECT_FALSE(shrunk.failure.empty());
    EXPECT_LE(shrunk.point.sim.maxRefs, point.sim.maxRefs);

    FuzzPoint replayed =
        fuzzPointFromJson(fuzzPointToJson(shrunk.point));
    PropertyReport again = checkPoint(replayed, options);
    EXPECT_FALSE(again.ok())
        << "shrunk repro no longer reproduces the failure";
}

TEST(FuzzCoverage, EveryFaultKindIsDetected)
{
    for (const CoverageOutcome &outcome : runDetectorCoverage(false))
        EXPECT_TRUE(outcome.caught())
            << "fault kind '" << modelFaultName(outcome.kind)
            << "' evaded every detector: " << outcome.detail;
}

} // namespace
} // namespace rampage
