/**
 * @file
 * Unit tests for the debug-trace machinery: channel-spec parsing
 * (strict and lenient), the bounded post-mortem ring buffer, and the
 * hot-loop warning filters (warnOnce / warnRateLimited).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{
namespace
{

/** Disable all channels and clear the ring around each test. */
class DebugTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setDebugChannels("none");
        clearDebugRing();
        setQuiet(true);
    }

    void TearDown() override
    {
        setDebugChannels("none");
        clearDebugRing();
        setQuiet(false);
    }
};

TEST_F(DebugTest, ChannelNamesAreStable)
{
    EXPECT_STREQ(debugChannelName(DebugChannel::Cache), "cache");
    EXPECT_STREQ(debugChannelName(DebugChannel::Pager), "pager");
    EXPECT_STREQ(debugChannelName(DebugChannel::Trace), "trace");
    EXPECT_STREQ(debugChannelName(DebugChannel::Audit), "audit");
    EXPECT_EQ(debugChannelList(),
              "cache,tlb,pager,sched,dram,trace,audit");
}

TEST_F(DebugTest, SpecSelectsExactlyTheNamedChannels)
{
    setDebugChannels("pager,sched");
    EXPECT_TRUE(debugEnabled(DebugChannel::Pager));
    EXPECT_TRUE(debugEnabled(DebugChannel::Sched));
    EXPECT_FALSE(debugEnabled(DebugChannel::Cache));
    EXPECT_FALSE(debugEnabled(DebugChannel::Dram));

    setDebugChannels("all");
    for (unsigned i = 0; i < numDebugChannels; ++i)
        EXPECT_TRUE(debugEnabled(static_cast<DebugChannel>(i)));

    setDebugChannels("none");
    for (unsigned i = 0; i < numDebugChannels; ++i)
        EXPECT_FALSE(debugEnabled(static_cast<DebugChannel>(i)));
}

TEST_F(DebugTest, StrictSpecRejectsUnknownChannel)
{
    EXPECT_THROW(setDebugChannels("pager,bogus", /*strict=*/true),
                 ConfigError);
}

TEST_F(DebugTest, LenientSpecSkipsUnknownChannel)
{
    setDebugChannels("bogus,dram", /*strict=*/false);
    EXPECT_TRUE(debugEnabled(DebugChannel::Dram));
    EXPECT_FALSE(debugEnabled(DebugChannel::Cache));
}

TEST_F(DebugTest, RingKeepsNewestEventsOldestFirst)
{
    debugRecord(DebugChannel::Pager, "first");
    debugRecord(DebugChannel::Sched, "second");
    debugRecord(DebugChannel::Dram, "third");
    EXPECT_EQ(debugRingSize(), 3u);

    std::vector<std::string> tail = debugRingTail(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0], "sched: second");
    EXPECT_EQ(tail[1], "dram: third");
}

TEST_F(DebugTest, RingIsBounded)
{
    for (int i = 0; i < 1000; ++i)
        debugRecord(DebugChannel::Cache, "event " + std::to_string(i));
    // Capacity is an implementation detail; the contract is "bounded,
    // keeps the newest".
    EXPECT_LT(debugRingSize(), 1000u);
    std::vector<std::string> tail = debugRingTail(1);
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0], "cache: event 999");
}

TEST_F(DebugTest, ClearEmptiesTheRing)
{
    debugRecord(DebugChannel::Tlb, "x");
    clearDebugRing();
    EXPECT_EQ(debugRingSize(), 0u);
    EXPECT_TRUE(debugRingTail().empty());
}

TEST_F(DebugTest, FlushWritesFramedTailAndClears)
{
    debugRecord(DebugChannel::Pager, "fault vpn=0x1");
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    flushDebugRing(tmp);
    EXPECT_EQ(debugRingSize(), 0u);

    std::rewind(tmp);
    char buffer[512] = {};
    std::size_t got = std::fread(buffer, 1, sizeof(buffer) - 1, tmp);
    std::fclose(tmp);
    std::string text(buffer, got);
    EXPECT_NE(text.find("debug events"), std::string::npos);
    EXPECT_NE(text.find("pager: fault vpn=0x1"), std::string::npos);

    // Empty ring: flushing again must write nothing.
    tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    flushDebugRing(tmp);
    std::rewind(tmp);
    got = std::fread(buffer, 1, sizeof(buffer) - 1, tmp);
    std::fclose(tmp);
    EXPECT_EQ(got, 0u);
}

TEST_F(DebugTest, WarnOnceCountsEveryOccurrence)
{
    resetWarnFilters();
    const char *fmt = "test-warn-once %d";
    warnOnce(fmt, 1);
    warnOnce(fmt, 2);
    warnOnce(fmt, 3);
    EXPECT_EQ(warnOccurrences(fmt), 3u);
    resetWarnFilters();
    EXPECT_EQ(warnOccurrences(fmt), 0u);
}

TEST_F(DebugTest, WarnRateLimitedCountsPastTheLimit)
{
    resetWarnFilters();
    setWarnRateLimit(2);
    const char *fmt = "test-warn-rate %d";
    for (int i = 0; i < 10; ++i)
        warnRateLimited(fmt, i);
    EXPECT_EQ(warnOccurrences(fmt), 10u);
    setWarnRateLimit(0); // restore default
    resetWarnFilters();
}

} // namespace
} // namespace rampage
