/**
 * @file
 * Equivalence tests for the unified page store: a per-pid page-size
 * configuration in which every process uses the same page size must
 * normalize to the uniform policy and produce a *snapshot-identical*
 * system — same timeline, same statistics dump, same layout — as the
 * fixed-page configuration at that size.  This is the contract that
 * lets one PageStore replace the two historical pagers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/paged.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/benchmarks.hh"
#include "util/units.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

/** The fixed-page configuration at `page_bytes`. */
PagedConfig
fixedConfig(std::uint64_t page_bytes)
{
    PagedConfig cfg = rampageConfig(oneGhz, page_bytes);
    cfg.pager.baseSramBytes = 512 * kib;
    return cfg;
}

/**
 * The same system described through the per-pid policy: base frame ==
 * default page == every explicit pid's page.  Degenerate by design.
 */
PagedConfig
degenerateConfig(std::uint64_t page_bytes)
{
    PagedConfig cfg = fixedConfig(page_bytes);
    cfg.pager.defaultPageBytes = page_bytes;
    cfg.pager.pageBytesByPid[0] = page_bytes;
    cfg.pager.pageBytesByPid[1] = page_bytes;
    return cfg;
}

class UniformEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UniformEquivalence, DegenerateConfigNormalizesToUniform)
{
    auto hier = makeHierarchy(degenerateConfig(GetParam()));
    const PagedHierarchy &paged = asPaged(*hier);
    EXPECT_TRUE(paged.pager().uniform());
    EXPECT_EQ(paged.pager().pageBytes(), GetParam());
    EXPECT_EQ(hier->name(), "RAMpage");
}

TEST_P(UniformEquivalence, LayoutMatchesFixedPager)
{
    auto fixed = makeHierarchy(fixedConfig(GetParam()));
    auto degen = makeHierarchy(degenerateConfig(GetParam()));
    const PageStore &f = asPaged(*fixed).pager();
    const PageStore &d = asPaged(*degen).pager();
    EXPECT_EQ(f.sramBytes(), d.sramBytes());
    EXPECT_EQ(f.totalFrames(), d.totalFrames());
    EXPECT_EQ(f.osFrames(), d.osFrames());
    EXPECT_EQ(f.userFrames(), d.userFrames());
    EXPECT_EQ(f.osVirtBase(), d.osVirtBase());
    EXPECT_EQ(f.osVirtEnd(), d.osVirtEnd());
    EXPECT_EQ(f.tableVirtBase(), d.tableVirtBase());
}

TEST_P(UniformEquivalence, StatsSnapshotIdenticalToFixedPager)
{
    SimConfig sim;
    sim.maxRefs = 120'000;
    sim.quantumRefs = 20'000;

    auto run = [&](const PagedConfig &cfg) {
        auto hier = makeHierarchy(cfg);
        Simulator driver(*hier, makeWorkload(), sim);
        return driver.run();
    };
    SimResult fixed = run(fixedConfig(GetParam()));
    SimResult degen = run(degenerateConfig(GetParam()));

    EXPECT_EQ(fixed.elapsedPs, degen.elapsedPs);
    EXPECT_EQ(fixed.systemName, degen.systemName);
    // The full statistics snapshot — every counter, every formula,
    // registered under the same names in the same order.
    EXPECT_EQ(fixed.stats.toJson().dump(), degen.stats.toJson().dump());
}

INSTANTIATE_TEST_SUITE_P(PageSizes, UniformEquivalence,
                         ::testing::Values(512, 1024, 4096));

} // namespace
} // namespace rampage
