/**
 * @file
 * Chaos harness for the sweep checkpoint: a campaign is SIGKILLed
 * mid-flight — the harshest crash the kernel offers, no destructors,
 * no flushes — and the resumed campaign must reconstruct exactly the
 * state an uninterrupted run would have produced.  The manifest's
 * single-write() appends and torn-line repair are what make this
 * hold.
 *
 * The victim campaign runs in a fork()ed child (the gtest process is
 * still single-threaded at that point, so the fork is clean); the
 * parent watches the manifest grow, kills the child once at least two
 * points have committed, and resumes in-process.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{
namespace
{

constexpr int chaosPoints = 12;

/** Paced deterministic points: the sleep keeps the campaign alive
 *  long enough for the parent to land a SIGKILL mid-flight, and the
 *  synthetic result makes every committed line reproducible. */
void
addPacedPoints(SweepRunner &runner)
{
    for (int i = 0; i < chaosPoints; ++i) {
        std::string id = "point/" + std::to_string(i);
        runner.add(id, [i] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(40));
            SimResult result;
            result.elapsedPs = 1000 * (i + 1);
            result.systemName = "chaos";
            return result;
        });
    }
}

/** Manifest lines as an order-independent set with the two
 *  legitimately nondeterministic tokens (wall clock and the CRC that
 *  covers it) blanked. */
std::vector<std::string>
manifestLineSet(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        for (const char *token : {"crc=", "wall="}) {
            std::size_t at = line.find(token);
            if (at == std::string::npos)
                continue;
            std::size_t end = line.find(' ', at);
            if (end == std::string::npos)
                end = line.size();
            line.erase(at, end - at);
        }
        lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
}

unsigned
committedOkLines(const std::string &path)
{
    unsigned count = 0;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        if (line.rfind("crc=", 0) == 0 &&
            line.find(" ok ") != std::string::npos)
            ++count;
    return count;
}

class SweepChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        std::string stem =
            std::string(::testing::TempDir()) + "/rampage_chaos_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name();
        victim = stem + ".victim.checkpoint";
        reference = stem + ".reference.checkpoint";
        std::remove(victim.c_str());
        std::remove(reference.c_str());
    }

    void TearDown() override
    {
        setQuiet(false);
        std::remove(victim.c_str());
        std::remove(reference.c_str());
    }

    /**
     * The full chaos round: kill a checkpointed campaign mid-flight,
     * resume it, and demand the healed manifest and outcomes match an
     * uninterrupted reference run line for line.
     */
    void killResumeAndCompare(unsigned jobs)
    {
        // Victim campaign in a fork()ed child.  _exit() keeps the
        // child from running gtest's atexit machinery.
        pid_t pid = ::fork();
        ASSERT_NE(pid, -1) << "fork failed";
        if (pid == 0) {
            SweepRunner::Options opts;
            opts.checkpointPath = victim;
            opts.jobs = jobs;
            SweepRunner runner(opts);
            addPacedPoints(runner);
            runner.run();
            ::_exit(0);
        }

        // Let at least two points commit, then SIGKILL: no warning,
        // no cleanup, possibly mid-append.
        auto start = std::chrono::steady_clock::now();
        while (committedOkLines(victim) < 2 &&
               std::chrono::steady_clock::now() - start <
                   std::chrono::seconds(20))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        ::kill(pid, SIGKILL);
        int wstatus = 0;
        while (::waitpid(pid, &wstatus, 0) == -1 && errno == EINTR) {
        }
        ASSERT_TRUE(WIFSIGNALED(wstatus))
            << "campaign finished before the kill landed; "
               "pacing too fast for this machine";
        ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
        unsigned committed = committedOkLines(victim);
        ASSERT_GE(committed, 2u);
        ASSERT_LT(committed, unsigned(chaosPoints))
            << "kill landed after every point committed";

        // Resume on the healed manifest: committed points skip,
        // interrupted ones re-simulate.
        SweepRunner::Options opts;
        opts.checkpointPath = victim;
        opts.jobs = jobs;
        SweepRunner runner(opts);
        addPacedPoints(runner);
        SweepReport resumed = runner.run();
        ASSERT_TRUE(resumed.allOk());
        unsigned skipped = 0;
        for (const PointOutcome &outcome : resumed.outcomes)
            if (outcome.status == PointStatus::Skipped)
                ++skipped;
        EXPECT_GE(skipped, 2u);
        EXPECT_LT(skipped, unsigned(chaosPoints));

        // Uninterrupted reference run.
        SweepRunner::Options ref_opts;
        ref_opts.checkpointPath = reference;
        ref_opts.jobs = jobs;
        SweepRunner ref_runner(ref_opts);
        addPacedPoints(ref_runner);
        SweepReport ref = ref_runner.run();
        ASSERT_TRUE(ref.allOk());

        // The healed-and-resumed manifest is byte-identical to the
        // uninterrupted one up to wall clock — this covers the
        // elapsed_ps of every point, including the ones the resume
        // skipped.  Points the resume re-simulated are additionally
        // checked outcome-to-outcome.
        EXPECT_EQ(manifestLineSet(victim),
                  manifestLineSet(reference));
        ASSERT_EQ(resumed.outcomes.size(), ref.outcomes.size());
        for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
            EXPECT_EQ(resumed.outcomes[i].id, ref.outcomes[i].id);
            if (resumed.outcomes[i].status != PointStatus::Ok)
                continue;
            EXPECT_EQ(resumed.outcomes[i].result.elapsedPs,
                      ref.outcomes[i].result.elapsedPs)
                << ref.outcomes[i].id;
        }
    }

    std::string victim;
    std::string reference;
};

TEST_F(SweepChaosTest, SigkillMidCampaignResumesIdenticallySerial)
{
    killResumeAndCompare(1);
}

TEST_F(SweepChaosTest, SigkillMidCampaignResumesIdenticallyParallel)
{
    killResumeAndCompare(4);
}

} // namespace
} // namespace rampage
