/**
 * @file
 * Unit tests for the DRAM page directory (first-touch randomized
 * placement, §2.4 / Kessler-Hill placement discussion).
 */

#include <gtest/gtest.h>

#include <set>

#include "os/dram_directory.hh"

namespace rampage
{
namespace
{

TEST(DramDirectory, FirstTouchAllocatesOnce)
{
    DramDirectory dir(4096);
    bool allocated = false;
    std::uint64_t frame = dir.frameOf(1, 10, &allocated);
    EXPECT_TRUE(allocated);
    EXPECT_EQ(dir.frameOf(1, 10, &allocated), frame);
    EXPECT_FALSE(allocated);
    EXPECT_EQ(dir.allocatedFrames(), 1u);
}

TEST(DramDirectory, FramesAreUnique)
{
    DramDirectory dir(4096);
    std::set<std::uint64_t> frames;
    for (Pid pid = 0; pid < 4; ++pid)
        for (std::uint64_t vpn = 0; vpn < 500; ++vpn)
            frames.insert(dir.frameOf(pid, vpn));
    EXPECT_EQ(frames.size(), 2000u);
    EXPECT_EQ(dir.allocatedFrames(), 2000u);
}

TEST(DramDirectory, PlacementIsScattered)
{
    // Randomized placement: consecutive virtual pages must not land
    // in consecutive physical frames (that near-perfect coloring is
    // what hid the direct-mapped conflicts).
    DramDirectory dir(4096);
    unsigned consecutive = 0;
    std::uint64_t prev = dir.frameOf(0, 0);
    for (std::uint64_t vpn = 1; vpn < 200; ++vpn) {
        std::uint64_t frame = dir.frameOf(0, vpn);
        if (frame == prev + 1)
            ++consecutive;
        prev = frame;
    }
    EXPECT_LT(consecutive, 10u);
}

TEST(DramDirectory, PhysAddrPreservesOffset)
{
    DramDirectory dir(4096);
    Addr virt = (77ull << 12) | 0x123;
    Addr phys = dir.physAddr(5, virt);
    EXPECT_EQ(phys & 0xfffu, 0x123u);
    // Stable on re-translation.
    EXPECT_EQ(dir.physAddr(5, virt), phys);
    // Within the frame pool.
    EXPECT_LT(phys >> 12, dir.physPages());
}

TEST(DramDirectory, DistinctPidsGetDistinctFrames)
{
    DramDirectory dir(4096);
    EXPECT_NE(dir.frameOf(1, 42), dir.frameOf(2, 42));
}

TEST(DramDirectory, Deterministic)
{
    DramDirectory a(4096), b(4096);
    for (std::uint64_t vpn = 0; vpn < 300; ++vpn)
        EXPECT_EQ(a.frameOf(3, vpn), b.frameOf(3, vpn));
}

TEST(DramDirectory, ProbeAddrsAboveTableBase)
{
    DramDirectory dir(4096, Addr{1} << 40);
    std::vector<Addr> probes;
    dir.probeAddrs(1, 99, probes);
    ASSERT_EQ(probes.size(), 2u);
    for (Addr addr : probes)
        EXPECT_GE(addr, Addr{1} << 40);
    // Same page -> same probes (the handler re-walks the same chain).
    std::vector<Addr> again;
    dir.probeAddrs(1, 99, again);
    EXPECT_EQ(probes, again);
}

TEST(DramDirectory, PoolFillsCompletely)
{
    DramDirectory dir(4096, Addr{1} << 40, 64);
    std::set<std::uint64_t> frames;
    for (std::uint64_t vpn = 0; vpn < 64; ++vpn)
        frames.insert(dir.frameOf(0, vpn));
    EXPECT_EQ(frames.size(), 64u);
    EXPECT_EQ(*frames.rbegin(), 63u);
}

} // namespace
} // namespace rampage
