/**
 * @file
 * Unit tests for the inverted page table (paper §2.2).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "os/inverted_page_table.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

TEST(Ipt, InsertLookupRemove)
{
    InvertedPageTable ipt(64, 0x10000);
    EXPECT_FALSE(ipt.lookup(1, 42).found);

    ipt.insert(5, 1, 42);
    auto look = ipt.lookup(1, 42);
    EXPECT_TRUE(look.found);
    EXPECT_EQ(look.frame, 5u);
    EXPECT_TRUE(ipt.mapped(5));
    EXPECT_EQ(ipt.framePid(5), 1);
    EXPECT_EQ(ipt.frameVpn(5), 42u);
    EXPECT_EQ(ipt.mappedCount(), 1u);

    EXPECT_TRUE(ipt.remove(5));
    EXPECT_FALSE(ipt.remove(5));
    EXPECT_FALSE(ipt.lookup(1, 42).found);
    EXPECT_EQ(ipt.mappedCount(), 0u);
}

TEST(Ipt, PidsDistinguished)
{
    InvertedPageTable ipt(64, 0);
    ipt.insert(1, 1, 100);
    ipt.insert(2, 2, 100);
    EXPECT_EQ(ipt.lookup(1, 100).frame, 1u);
    EXPECT_EQ(ipt.lookup(2, 100).frame, 2u);
    EXPECT_FALSE(ipt.lookup(3, 100).found);
}

TEST(Ipt, ChainsSurviveMiddleRemoval)
{
    // Fill a small table completely so hash chains form, then remove
    // entries in arbitrary order and verify the rest stay findable.
    const std::uint64_t frames = 32;
    InvertedPageTable ipt(frames, 0);
    for (std::uint64_t f = 0; f < frames; ++f)
        ipt.insert(f, 0, 1000 + f);

    // Remove every third frame.
    for (std::uint64_t f = 0; f < frames; f += 3)
        EXPECT_TRUE(ipt.remove(f));

    for (std::uint64_t f = 0; f < frames; ++f) {
        auto look = ipt.lookup(0, 1000 + f);
        if (f % 3 == 0) {
            EXPECT_FALSE(look.found);
        } else {
            ASSERT_TRUE(look.found);
            EXPECT_EQ(look.frame, f);
        }
    }
}

TEST(Ipt, ProbeAddressesWithinTableImage)
{
    InvertedPageTable ipt(128, 0x20000);
    ipt.insert(3, 1, 7);
    std::vector<Addr> probes;
    auto look = ipt.lookup(1, 7, &probes);
    EXPECT_TRUE(look.found);
    // At least the anchor plus one entry probe.
    ASSERT_GE(probes.size(), 2u);
    for (Addr addr : probes) {
        EXPECT_GE(addr, 0x20000u);
        EXPECT_LT(addr, 0x20000u + ipt.tableBytes());
    }
}

TEST(Ipt, ProbeCountMatchesChainPosition)
{
    InvertedPageTable ipt(64, 0);
    ipt.insert(0, 0, 5);
    std::vector<Addr> probes;
    auto look = ipt.lookup(0, 5, &probes);
    EXPECT_EQ(look.probes, 1u);
    EXPECT_EQ(probes.size(), 2u); // anchor + entry
    EXPECT_GT(ipt.meanProbeDepth(), 0.0);
}

TEST(Ipt, TableBytesTracksPaperBudget)
{
    // The §4.5 calibration: ~20 bytes per frame plus a compact anchor
    // array (see the DESIGN.md reserve discussion).  At 33792 frames
    // (4.125 MB of 128 B pages) the table must stay in the ~700 KB
    // range the paper's 667 KB reserve implies.
    InvertedPageTable ipt(33792, 0);
    EXPECT_GT(ipt.tableBytes(), 33792 * iptEntryBytes);
    EXPECT_LT(ipt.tableBytes(), 800 * 1024u);
}

TEST(Ipt, EntryAddrDistinct)
{
    InvertedPageTable ipt(16, 0x1000);
    std::set<Addr> addrs;
    for (std::uint64_t f = 0; f < 16; ++f)
        addrs.insert(ipt.entryAddr(f));
    EXPECT_EQ(addrs.size(), 16u);
}

TEST(Ipt, RandomChurnConsistency)
{
    // Property: under random insert/remove churn the table always
    // agrees with a reference map.
    const std::uint64_t frames = 64;
    InvertedPageTable ipt(frames, 0);
    Rng rng(77);
    std::vector<bool> occupied(frames, false);
    std::vector<std::uint64_t> vpn_of(frames, 0);

    for (int i = 0; i < 20000; ++i) {
        std::uint64_t frame = rng.below(frames);
        if (occupied[frame]) {
            // Verify, then remove.
            auto look = ipt.lookup(7, vpn_of[frame]);
            ASSERT_TRUE(look.found);
            ASSERT_EQ(look.frame, frame);
            ASSERT_TRUE(ipt.remove(frame));
            occupied[frame] = false;
        } else {
            std::uint64_t vpn = rng.below(1 << 20);
            // Skip duplicate vpns (two frames must not map one page).
            if (ipt.lookup(7, vpn).found)
                continue;
            ipt.insert(frame, 7, vpn);
            occupied[frame] = true;
            vpn_of[frame] = vpn;
        }
    }
    std::uint64_t expected = 0;
    for (bool occ : occupied)
        expected += occ;
    EXPECT_EQ(ipt.mappedCount(), expected);
}

} // namespace
} // namespace rampage
