/**
 * @file
 * Tests for the timeline-observability layer: the trace-event ring
 * and its Chrome-trace JSON output, the glob matcher and stats
 * filtering behind --stats-filter, histogram percentile estimates,
 * the host-side phase profiler, and the codec v2 fields that carry
 * all of it across the --isolate fork boundary.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/point_ipc.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "obs/obs_config.hh"
#include "obs/phase_profiler.hh"
#include "obs/trace_session.hh"
#include "stats/histogram.hh"
#include "stats/registry.hh"
#include "trace/synthetic.hh"
#include "util/error.hh"
#include "util/glob.hh"
#include "util/json.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

std::vector<std::unique_ptr<TraceSource>>
tinyWorkload(int programs = 3)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (int i = 0; i < programs; ++i) {
        ProgramProfile profile;
        profile.name = "tiny" + std::to_string(i);
        profile.seed = 100 + i;
        profile.heapBytes = 256 * kib;
        sources.push_back(std::make_unique<SyntheticProgram>(
            profile, static_cast<Pid>(i)));
    }
    return sources;
}

SimConfig
tinySim(std::uint64_t refs = 60'000, std::uint64_t quantum = 10'000)
{
    SimConfig sim;
    sim.maxRefs = refs;
    sim.quantumRefs = quantum;
    return sim;
}

std::string
tempPath(const std::string &tag)
{
    return std::string(::testing::TempDir()) + "/rampage_obs_" + tag;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

// --- glob ------------------------------------------------------------

TEST(Glob, MatchesLiteralAndWildcards)
{
    EXPECT_TRUE(globMatch("tlb.misses", "tlb.misses"));
    EXPECT_FALSE(globMatch("tlb.misses", "tlb.hits"));
    EXPECT_TRUE(globMatch("tlb.*", "tlb.misses"));
    EXPECT_FALSE(globMatch("tlb.*", "l2.misses"));
    EXPECT_TRUE(globMatch("*", ""));
    EXPECT_TRUE(globMatch("*", "anything.at.all"));
    EXPECT_TRUE(globMatch("l?.misses", "l2.misses"));
    EXPECT_FALSE(globMatch("l?.misses", "l2a.misses"));
    EXPECT_FALSE(globMatch("?", ""));
}

TEST(Glob, StarBacktracks)
{
    // The first '*' must be able to give characters back so the later
    // literal and '*' still match.
    EXPECT_TRUE(globMatch("a*b*c", "aXbXbXc"));
    EXPECT_TRUE(globMatch("*misses", "dram.tx.misses"));
    EXPECT_FALSE(globMatch("a*b*c", "aXbXbX"));
    EXPECT_TRUE(globMatch("a**b", "ab"));
}

TEST(StatsSnapshot, FilterKeepsMatchingEntriesInOrder)
{
    StatsSnapshot snap;
    snap.addCounter("tlb.misses", "", 7);
    snap.addCounter("l2.misses", "", 9);
    snap.addCounter("tlb.fills", "", 3);
    StatsSnapshot tlb = snap.filter("tlb.*");
    ASSERT_EQ(tlb.entries().size(), 2u);
    EXPECT_EQ(tlb.entries()[0].name, "tlb.misses");
    EXPECT_EQ(tlb.entries()[1].name, "tlb.fills");
    EXPECT_TRUE(snap.filter("nothing.*").empty());
}

// --- histogram percentiles ------------------------------------------

TEST(Histogram, Log2BucketPercentileUpperBounds)
{
    // 4 samples in bucket 1 (upper bound 3), 4 in bucket 3 (upper 15).
    std::vector<std::uint64_t> buckets{0, 4, 0, 4};
    EXPECT_EQ(log2BucketsPercentile(buckets, 0.50), 3u);
    EXPECT_EQ(log2BucketsPercentile(buckets, 0.95), 15u);
    EXPECT_EQ(log2BucketsPercentile(buckets, 0.99), 15u);
    EXPECT_EQ(log2BucketsPercentile({}, 0.5), 0u);
}

TEST(Histogram, JsonCarriesPercentilesAndCount)
{
    Log2Histogram hist;
    for (std::uint64_t v = 1; v <= 100; ++v)
        hist.add(v);
    StatsRegistry reg;
    reg.addHistogram("dram.tx_bytes", "test histogram", &hist);
    JsonValue doc = reg.snapshot().toJson();
    const JsonValue &entry = doc.at("dram.tx_bytes");
    ASSERT_TRUE(entry.isObject());
    EXPECT_EQ(entry.at("count").asInt(), 100);
    EXPECT_EQ(entry.at("samples").asInt(), 100);
    EXPECT_EQ(entry.at("sum").asInt(), 5050);
    EXPECT_DOUBLE_EQ(entry.at("mean").asDouble(), 50.5);
    // Percentile estimates are log2 bucket upper bounds, so they can
    // only round up relative to the exact value.
    EXPECT_GE(entry.at("p50").asInt(), 50);
    EXPECT_GE(entry.at("p95").asInt(), 95);
    EXPECT_GE(entry.at("p99").asInt(), 99);
    EXPECT_LE(entry.at("p99").asInt(), 127);
}

// --- trace ring ------------------------------------------------------

TEST(TraceSession, RingOverflowCountsDrops)
{
    TraceSession session(4);
    session.setNow(1000);
    for (std::uint64_t i = 0; i < 10; ++i)
        session.emit(TraceEventKind::L2Miss, 0, i, 0);
    EXPECT_EQ(session.emitted(), 10u);
    EXPECT_EQ(session.dropped(), 6u);
    EXPECT_EQ(session.size(), 4u);
    EXPECT_EQ(session.capacity(), 4u);
}

TEST(TraceSession, WritesWellFormedChromeTrace)
{
    TraceSession session(64);
    session.setNow(2'000'000); // 2 us simulated
    session.emit(TraceEventKind::L2Miss, 0, 0xdead, 1);
    session.emit(TraceEventKind::PageFault, 500'000, 42, 1);
    session.setNow(3'000'000);
    session.emit(TraceEventKind::DramTx, 0, 4096, 1);

    std::string path = tempPath("chrome.trace.json");
    ASSERT_TRUE(session.writeChromeTrace(path));

    JsonValue doc = JsonValue::parse(readFile(path));
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ns");
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    // 6 metadata events (process name + 5 tracks) + 3 events.
    ASSERT_EQ(events.size(), 9u);
    std::size_t complete = 0, instant = 0, metadata = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const std::string &ph = events.at(i).at("ph").asString();
        if (ph == "M")
            ++metadata;
        else if (ph == "X")
            ++complete;
        else if (ph == "i")
            ++instant;
    }
    EXPECT_EQ(metadata, 6u);
    EXPECT_EQ(complete, 1u); // only the fault had a duration
    EXPECT_EQ(instant, 2u);
    EXPECT_EQ(doc.at("otherData").at("emitted").asInt(), 3);
    EXPECT_EQ(doc.at("otherData").at("dropped").asInt(), 0);
}

TEST(TraceSession, WriteFailureReturnsFalse)
{
    TraceSession session(4);
    session.setNow(1);
    session.emit(TraceEventKind::TlbFill, 0, 1, 0);
    EXPECT_FALSE(session.writeChromeTrace(
        std::string(::testing::TempDir()) +
        "/no_such_dir_rampage/trace.json"));
}

// --- per-run file naming --------------------------------------------

TEST(ObsConfig, RunFilePathUsesSanitizedThreadLabel)
{
    ObsPointLabelScope label("rampage/4KB");
    EXPECT_EQ(obsRunFilePath("out/fig", ".trace.json"),
              "out/fig.rampage_4KB.trace.json");
}

TEST(ObsConfig, RunFilePathFallsBackToSequenceNumber)
{
    std::string a = obsRunFilePath("base", ".x");
    std::string b = obsRunFilePath("base", ".x");
    EXPECT_NE(a, b);
    EXPECT_EQ(a.find("base.run"), 0u);
}

TEST(ObsConfig, StrictIntervalParsing)
{
    EXPECT_EQ(parseStatsInterval("50000"), 50'000u);
    EXPECT_THROW(parseStatsInterval("0"), ConfigError);
    EXPECT_THROW(parseStatsInterval("-3"), ConfigError);
    EXPECT_THROW(parseStatsInterval("12junk"), ConfigError);
    EXPECT_THROW(parseStatsInterval(""), ConfigError);
    EXPECT_THROW(parseTraceRingCapacity("0"), ConfigError);
}

// --- simulation integration -----------------------------------------

TEST(ObsSimulation, TracedRunReportsEventsAndDrops)
{
    auto hier = makeHierarchy(rampageConfig(oneGhz, 4 * kib));
    SimConfig sim = tinySim();
    sim.traceOutBase = tempPath("dropped");
    sim.traceRingCapacity = 16; // force overwrites
    Simulator simulator(*hier, tinyWorkload(), sim);
    SimResult result = simulator.run();

    const StatsSnapshot::Entry *events =
        result.stats.find("sim.trace.events");
    const StatsSnapshot::Entry *dropped =
        result.stats.find("sim.trace.dropped");
    ASSERT_NE(events, nullptr);
    ASSERT_NE(dropped, nullptr);
    EXPECT_GT(events->counter, 16u);
    EXPECT_GT(dropped->counter, 0u);

    ASSERT_FALSE(result.traceFile.empty());
    JsonValue doc = JsonValue::parse(readFile(result.traceFile));
    EXPECT_EQ(static_cast<std::uint64_t>(
                  doc.at("otherData").at("dropped").asInt()),
              dropped->counter);
    std::remove(result.traceFile.c_str());
}

TEST(ObsSimulation, TracingDoesNotPerturbTheModel)
{
    auto baseline = [](SimConfig sim) {
        auto hier = makeHierarchy(rampageConfig(oneGhz, 4 * kib));
        Simulator simulator(*hier, tinyWorkload(), sim);
        return simulator.run();
    };
    SimResult plain = baseline(tinySim());

    SimConfig traced_cfg = tinySim();
    traced_cfg.traceOutBase = tempPath("identity");
    traced_cfg.statsIntervalRefs = 7'000;
    SimResult traced = baseline(traced_cfg);

    EXPECT_EQ(plain.elapsedPs, traced.elapsedPs);
    EXPECT_EQ(plain.counts.dramReads, traced.counts.dramReads);
    EXPECT_EQ(plain.counts.tlbMisses, traced.counts.tlbMisses);

    // Every model stat must be identical; only the sim.trace.* /
    // sim.interval.* bookkeeping entries may be new.
    for (const StatsSnapshot::Entry &entry : plain.stats.entries()) {
        const StatsSnapshot::Entry *other =
            traced.stats.find(entry.name);
        ASSERT_NE(other, nullptr) << entry.name;
        EXPECT_EQ(entry.counter, other->counter) << entry.name;
        EXPECT_EQ(entry.value, other->value) << entry.name;
        EXPECT_EQ(entry.buckets, other->buckets) << entry.name;
    }
    for (const StatsSnapshot::Entry &entry : traced.stats.entries()) {
        if (!plain.stats.find(entry.name))
            EXPECT_TRUE(entry.name.rfind("sim.trace.", 0) == 0 ||
                        entry.name.rfind("sim.interval.", 0) == 0)
                << entry.name;
    }
    std::remove(traced.traceFile.c_str());
    std::remove(traced.intervalFile.c_str());
}

// --- phase profiler --------------------------------------------------

TEST(PhaseProfiler, ThreadTotalsAndSummary)
{
    phaseThreadReset();
    phaseRecord(SweepPhase::Simulate, 1.25);
    phaseRecord(SweepPhase::Simulate, 0.75);
    phaseRecord(SweepPhase::Audit, 0.5);
    PhaseSeconds totals = phaseThreadTotals();
    EXPECT_DOUBLE_EQ(
        totals[static_cast<std::size_t>(SweepPhase::Simulate)], 2.0);
    EXPECT_DOUBLE_EQ(
        totals[static_cast<std::size_t>(SweepPhase::Audit)], 0.5);
    EXPECT_DOUBLE_EQ(
        totals[static_cast<std::size_t>(SweepPhase::TraceGen)], 0.0);

    std::string summary = phaseGlobalSummary();
    EXPECT_NE(summary.find("simulate"), std::string::npos);
    EXPECT_NE(summary.find("audit"), std::string::npos);
}

TEST(PhaseProfiler, ScopedTimerRecordsSomething)
{
    phaseThreadReset();
    {
        ScopedPhaseTimer timer(SweepPhase::TraceGen);
        volatile int sink = 0;
        for (int i = 0; i < 100'000; ++i)
            sink += i;
        (void)sink;
    }
    PhaseSeconds totals = phaseThreadTotals();
    EXPECT_GT(totals[static_cast<std::size_t>(SweepPhase::TraceGen)],
              0.0);
}

// --- fork-boundary codec --------------------------------------------

TEST(PointIpc, RoundTripsPhaseTotalsAndTimelineFiles)
{
    PointOutcome outcome;
    outcome.id = "rampage/4KB";
    outcome.status = PointStatus::Ok;
    outcome.wallSeconds = 1.5;
    outcome.attempts = 1;
    outcome.haveResult = true;
    outcome.result.systemName = "RAMpage";
    outcome.result.issueHz = oneGhz;
    outcome.result.elapsedPs = 123'456'789;
    outcome.result.traceFile = "out/fig.rampage_4KB.trace.json";
    outcome.result.intervalFile = "out/fig.rampage_4KB.intervals.jsonl";
    outcome.phaseSeconds[static_cast<std::size_t>(
        SweepPhase::TraceGen)] = 0.25;
    outcome.phaseSeconds[static_cast<std::size_t>(
        SweepPhase::Simulate)] = 3.5;
    outcome.phaseSeconds[static_cast<std::size_t>(SweepPhase::Ipc)] =
        0.0625;

    PointOutcome back =
        decodePointOutcome(encodePointOutcome(outcome));
    EXPECT_EQ(back.id, outcome.id);
    EXPECT_EQ(back.result.traceFile, outcome.result.traceFile);
    EXPECT_EQ(back.result.intervalFile, outcome.result.intervalFile);
    for (std::size_t i = 0; i < sweepPhaseCount; ++i)
        EXPECT_DOUBLE_EQ(back.phaseSeconds[i],
                         outcome.phaseSeconds[i])
            << sweepPhaseName(static_cast<SweepPhase>(i));
}

} // namespace
} // namespace rampage
