/**
 * @file
 * Unit tests for the SRAM main-memory page store in its uniform
 * (fixed page size) policy (paper §2.2, §4.5), including the paper's
 * capacity arithmetic.
 */

#include <gtest/gtest.h>

#include "os/page_store.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

PageStoreParams
smallParams(std::uint64_t page_bytes = 1024,
            std::uint64_t sram_bytes = 64 * 1024)
{
    PageStoreParams p;
    p.pageBytes = page_bytes;
    p.baseSramBytes = sram_bytes;
    p.osFixedBytes = 4 * 1024;
    return p;
}

TEST(Pager, PaperCapacityAt128BytePages)
{
    // §4.5: at 128 B pages the SRAM main memory is 4 MB + 128 KB of
    // reclaimed tag space = 4.125 MB = 33792 frames.
    PageStoreParams p;
    p.pageBytes = 128;
    PageStore pager(p);
    EXPECT_TRUE(pager.uniform());
    EXPECT_EQ(pager.sramBytes(), 4 * mib + 128 * kib);
    EXPECT_EQ(pager.totalFrames(), 33792u);
    // The pinned reserve stays near the paper's 5336 pages (667 KB).
    EXPECT_GT(pager.osFrames(), 5000u);
    EXPECT_LT(pager.osFrames(), 6200u);
}

TEST(Pager, PaperCapacityAt4KPages)
{
    // §4.5: tag bonus scales down with page count; at 4 KB pages the
    // bonus is 4 KB (one page) and the OS reserve is a handful of
    // pages (the paper says 6; ours is slightly larger because the
    // fixed handler image is modelled explicitly).
    PageStoreParams p;
    p.pageBytes = 4096;
    PageStore pager(p);
    EXPECT_EQ(pager.sramBytes(), 4 * mib + 4096);
    EXPECT_EQ(pager.totalFrames(), 1025u);
    EXPECT_GE(pager.osFrames(), 6u);
    EXPECT_LE(pager.osFrames(), 12u);
}

TEST(Pager, ColdFillUsesFreeFramesFirst)
{
    PageStore pager(smallParams());
    std::uint64_t first = pager.osFrames();
    auto fault = pager.handleFault(1, 100);
    EXPECT_EQ(fault.frame, first);
    EXPECT_TRUE(fault.victims.empty());
    fault = pager.handleFault(1, 101);
    EXPECT_EQ(fault.frame, first + 1);
    EXPECT_EQ(pager.stats().coldFills, 2u);
}

TEST(Pager, LookupFindsFaultedPage)
{
    PageStore pager(smallParams());
    auto fault = pager.handleFault(2, 55);
    auto look = pager.lookup(2, 55);
    EXPECT_TRUE(look.found);
    EXPECT_EQ(look.frame, fault.frame);
    EXPECT_FALSE(pager.lookup(2, 56).found);
}

TEST(Pager, EvictionReportsVictimAndUnmapsIt)
{
    PageStore pager(smallParams());
    std::uint64_t user = pager.userFrames();
    // Fill the whole user space.
    for (std::uint64_t vpn = 0; vpn < user; ++vpn)
        pager.handleFault(1, vpn);
    // Next fault must evict someone.
    auto fault = pager.handleFault(1, 10'000);
    ASSERT_EQ(fault.victims.size(), 1u);
    EXPECT_EQ(fault.victims[0].pid, 1);
    EXPECT_FALSE(pager.lookup(1, fault.victims[0].vpn).found);
    EXPECT_TRUE(pager.lookup(1, 10'000).found);
    EXPECT_GE(fault.frame, pager.osFrames());
}

TEST(Pager, DirtyVictimFlagged)
{
    PageStore pager(smallParams());
    std::uint64_t user = pager.userFrames();
    for (std::uint64_t vpn = 0; vpn < user; ++vpn) {
        auto fault = pager.handleFault(1, vpn);
        pager.markDirty(fault.frame);
    }
    auto fault = pager.handleFault(1, 99'999);
    ASSERT_EQ(fault.victims.size(), 1u);
    EXPECT_TRUE(fault.victims[0].dirty);
    EXPECT_EQ(pager.stats().dirtyWritebacks, 1u);
    // The reused frame starts clean.
    EXPECT_FALSE(pager.isDirty(fault.frame));
}

TEST(Pager, FaultProbesLieInPinnedTable)
{
    PageStore pager(smallParams());
    auto fault = pager.handleFault(1, 5);
    ASSERT_FALSE(fault.probes.empty());
    for (Addr addr : fault.probes) {
        EXPECT_GE(addr, pager.tableVirtBase());
        EXPECT_LT(addr, pager.osVirtEnd());
    }
}

TEST(Pager, OsPhysAddrIsIdentityIntoReserve)
{
    PageStore pager(smallParams());
    Addr base = pager.osVirtBase();
    EXPECT_EQ(pager.osPhysAddr(base), 0u);
    EXPECT_EQ(pager.osPhysAddr(base + 123), 123u);
    // The whole OS image maps below the pinned boundary.
    Addr last = pager.osVirtEnd() - 1;
    EXPECT_LT(pager.osPhysAddr(last),
              pager.osFrames() * pager.pageBytes());
}

TEST(Pager, PhysAddrComposition)
{
    PageStore pager(smallParams(1024));
    EXPECT_EQ(pager.physAddr(3, 17), 3 * 1024 + 17u);
}

TEST(Pager, TouchKeepsHotPagesResidentUnderClock)
{
    // Property: once the degenerate all-referenced state clears (the
    // clock's first sweep wipes every mark), a constantly-touched
    // page survives arbitrary fault churn.
    PageStore pager(smallParams());
    auto hot = pager.handleFault(9, 1);
    std::uint64_t hot_frame = hot.frame;
    bool warmed = false;
    for (std::uint64_t vpn = 100; vpn < 100 + 6 * pager.userFrames();
         ++vpn) {
        pager.touch(hot_frame);
        auto fault = pager.handleFault(9, vpn);
        if (!pager.lookup(9, 1).found) {
            // Only permissible during the first post-fill sweep,
            // before the touch stream can differentiate the page.
            ASSERT_FALSE(warmed) << "hot page evicted while warm";
            auto refault = pager.handleFault(9, 1);
            hot_frame = refault.frame;
            warmed = true;
        }
        if (!fault.victims.empty())
            warmed = true;
    }
    EXPECT_TRUE(pager.lookup(9, 1).found);
}

TEST(Pager, StandbyPolicyIntegrates)
{
    PageStoreParams p = smallParams();
    p.repl = PageReplKind::Standby;
    p.standbyPages = 4;
    PageStore pager(p);
    for (std::uint64_t vpn = 0; vpn < 3 * pager.userFrames(); ++vpn)
        pager.handleFault(1, vpn);
    EXPECT_GT(pager.stats().faults, pager.userFrames());
}

class PagerPageSizes : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PagerPageSizes, SizingInvariants)
{
    // The paper's sweep: every page size yields a consistent layout.
    PageStoreParams p;
    p.pageBytes = GetParam();
    PageStore pager(p);
    EXPECT_EQ(pager.sramBytes(), pager.totalFrames() * pager.pageBytes());
    EXPECT_GE(pager.sramBytes(), 4 * mib);
    EXPECT_GT(pager.userFrames(), 0u);
    // The reserve covers the fixed OS image plus the whole table.
    EXPECT_GE(pager.osFrames() * pager.pageBytes(),
              p.osFixedBytes + pager.table().tableBytes());
    // Bonus never exceeds the tag-equivalent budget.
    EXPECT_LE(pager.sramBytes(),
              4 * mib + (4 * mib / p.pageBytes) * p.tagBytesPerBlock);
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, PagerPageSizes,
                         ::testing::Values(128, 256, 512, 1024, 2048,
                                           4096));

} // namespace
} // namespace rampage
