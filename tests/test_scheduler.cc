/**
 * @file
 * Unit tests for the context-switch-on-miss scheduler (paper §4.6).
 */

#include <gtest/gtest.h>

#include "os/scheduler.hh"

namespace rampage
{
namespace
{

TEST(Scheduler, QuantumExpiry)
{
    Scheduler sched(3, 5);
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(sched.onRef());
    EXPECT_TRUE(sched.onRef());
    // Counter reset after expiry.
    EXPECT_FALSE(sched.onRef());
}

TEST(Scheduler, RotateRoundRobin)
{
    Scheduler sched(3, 100);
    EXPECT_EQ(sched.current(), 0u);
    auto pick = sched.rotate(0);
    EXPECT_EQ(pick.index, 1u);
    EXPECT_FALSE(pick.stalled);
    pick = sched.rotate(0);
    EXPECT_EQ(pick.index, 2u);
    pick = sched.rotate(0);
    EXPECT_EQ(pick.index, 0u);
    EXPECT_EQ(sched.stats().quantumSwitches, 3u);
}

TEST(Scheduler, BlockedProcessSkipped)
{
    Scheduler sched(3, 100);
    // Block process 0 until t=1000; rotation from 0 picks 1.
    auto pick = sched.blockCurrent(0, 1000);
    EXPECT_EQ(pick.index, 1u);
    // Rotating at t=500 skips 0 (still blocked) after 2.
    sched.rotate(500); // -> 2
    pick = sched.rotate(500);
    EXPECT_EQ(pick.index, 1u); // 0 skipped
    // At t=1000, 0 becomes ready again.
    pick = sched.rotate(1000);
    EXPECT_EQ(pick.index, 2u);
    pick = sched.rotate(1000);
    EXPECT_EQ(pick.index, 0u);
}

TEST(Scheduler, AllBlockedStallsToEarliest)
{
    Scheduler sched(2, 100);
    sched.blockCurrent(0, 500);  // block 0, run 1
    auto pick = sched.blockCurrent(100, 300); // block 1 too
    EXPECT_TRUE(pick.stalled);
    EXPECT_EQ(pick.index, 1u);     // earliest unblock (t=300)
    EXPECT_EQ(pick.resumeAt, 300u);
    EXPECT_EQ(sched.stats().stalls, 1u);
    EXPECT_EQ(sched.stats().stallTime, 200u);
}

TEST(Scheduler, ReadyCount)
{
    Scheduler sched(4, 100);
    EXPECT_EQ(sched.readyCount(0), 4u);
    sched.blockCurrent(0, 1000);
    EXPECT_EQ(sched.readyCount(0), 3u);
    EXPECT_EQ(sched.readyCount(1000), 4u);
    EXPECT_TRUE(sched.ready(0, 1000));
    EXPECT_FALSE(sched.ready(0, 999));
}

TEST(Scheduler, MissSwitchesCounted)
{
    Scheduler sched(3, 100);
    sched.blockCurrent(0, 10);
    sched.blockCurrent(0, 10);
    EXPECT_EQ(sched.stats().missSwitches, 2u);
}

TEST(Scheduler, SingleProcessStallsOnOwnFault)
{
    Scheduler sched(1, 100);
    auto pick = sched.blockCurrent(0, 700);
    EXPECT_TRUE(pick.stalled);
    EXPECT_EQ(pick.index, 0u);
    EXPECT_EQ(pick.resumeAt, 700u);
}

TEST(Scheduler, QuantumResetOnSwitch)
{
    Scheduler sched(2, 3);
    sched.onRef();
    sched.onRef();
    sched.rotate(0); // resets slice
    EXPECT_FALSE(sched.onRef());
    EXPECT_FALSE(sched.onRef());
    EXPECT_TRUE(sched.onRef());
}

} // namespace
} // namespace rampage
