/**
 * @file
 * Tests for OS handler trace synthesis (paper §4.3, §4.6).
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/handlers.hh"

namespace rampage
{
namespace
{

TEST(Handlers, ContextSwitchIsAboutFourHundredRefs)
{
    // §4.6: "approximately 400 references per context switch".
    HandlerTraces handlers;
    std::vector<MemRef> refs;
    handlers.contextSwitch(refs);
    EXPECT_EQ(refs.size(), handlers.contextSwitchLength());
    EXPECT_GE(refs.size(), 380u);
    EXPECT_LE(refs.size(), 420u);
}

TEST(Handlers, AllRefsCarryOsPid)
{
    HandlerTraces handlers;
    std::vector<MemRef> refs;
    handlers.tlbMiss(refs, {0x13000, 0x13040});
    handlers.pageFault(refs, {0x13080});
    handlers.contextSwitch(refs);
    for (const MemRef &ref : refs)
        ASSERT_EQ(ref.pid, osPid);
}

TEST(Handlers, TlbMissIncludesSuppliedProbes)
{
    HandlerTraces handlers;
    std::vector<MemRef> refs;
    std::vector<Addr> probes = {0x13000, 0x13140, 0x13280};
    handlers.tlbMiss(refs, probes);

    unsigned found = 0;
    for (const MemRef &ref : refs) {
        if (!ref.isInstr()) {
            ASSERT_LT(found, probes.size());
            EXPECT_EQ(ref.vaddr, probes[found]);
            ++found;
        }
    }
    EXPECT_EQ(found, probes.size());
    // Body length: fixed instructions plus the probes.
    EXPECT_EQ(refs.size(),
              handlers.costs().tlbMissInstrs + probes.size());
}

TEST(Handlers, TlbMissProbesAreLoads)
{
    HandlerTraces handlers;
    std::vector<MemRef> refs;
    handlers.tlbMiss(refs, {0x13000});
    for (const MemRef &ref : refs) {
        if (!ref.isInstr()) {
            EXPECT_EQ(ref.kind, RefKind::Load);
        }
    }
}

TEST(Handlers, PageFaultMixesLoadsAndStores)
{
    HandlerTraces handlers;
    std::vector<MemRef> refs;
    handlers.pageFault(refs, {0x13000, 0x13014});
    unsigned loads = 0, stores = 0, fetches = 0;
    for (const MemRef &ref : refs) {
        if (ref.kind == RefKind::IFetch)
            ++fetches;
        else if (ref.kind == RefKind::Store)
            ++stores;
        else
            ++loads;
    }
    EXPECT_EQ(fetches, handlers.costs().pageFaultInstrs);
    EXPECT_GT(loads, 0u);
    EXPECT_GT(stores, 0u);
}

TEST(Handlers, FetchesAreSequentialWithinBody)
{
    HandlerTraces handlers;
    std::vector<MemRef> refs;
    handlers.tlbMiss(refs, {});
    Addr prev = 0;
    bool first = true;
    for (const MemRef &ref : refs) {
        if (!ref.isInstr())
            continue;
        if (!first) {
            EXPECT_EQ(ref.vaddr, prev + 4);
        }
        prev = ref.vaddr;
        first = false;
    }
}

TEST(Handlers, BodiesFitCompactOsImage)
{
    // Every reference must land inside the fixed 12 KB OS image
    // (code 4 KB + data 8 KB) so the pinned-reserve arithmetic in
    // the pager holds.
    HandlerTraces handlers;
    std::vector<MemRef> refs;
    handlers.tlbMiss(refs, {});
    handlers.pageFault(refs, {});
    for (int i = 0; i < 40; ++i)
        handlers.contextSwitch(refs); // rotates PCB slots
    HandlerLayout lay;
    for (const MemRef &ref : refs) {
        ASSERT_GE(ref.vaddr, lay.codeBase);
        ASSERT_LT(ref.vaddr, lay.codeBase + 12 * 1024)
            << std::hex << ref.vaddr;
    }
}

TEST(Handlers, ConsecutiveSwitchesTouchDifferentPcbs)
{
    HandlerTraces handlers;
    std::vector<MemRef> a, b;
    handlers.contextSwitch(a);
    handlers.contextSwitch(b);
    // Data reference sets differ between consecutive switches.
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
        if (!a[i].isInstr() && !b[i].isInstr() &&
            a[i].vaddr != b[i].vaddr) {
            differs = true;
            break;
        }
    }
    EXPECT_TRUE(differs);
}

TEST(Handlers, CustomCosts)
{
    HandlerCosts costs;
    costs.tlbMissInstrs = 10;
    costs.contextSwitchInstrs = 50;
    costs.contextSwitchData = 20;
    HandlerTraces handlers(HandlerLayout{}, costs);
    std::vector<MemRef> refs;
    handlers.contextSwitch(refs);
    EXPECT_EQ(refs.size(), 70u);
}

} // namespace
} // namespace rampage
