/**
 * @file
 * Unit and property tests for the TLB model (paper §2.3, §4.3).
 */

#include <gtest/gtest.h>

#include <set>

#include "tlb/tlb.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

TEST(Tlb, MissThenHit)
{
    Tlb tlb;
    EXPECT_FALSE(tlb.lookup(1, 100).hit);
    tlb.insert(1, 100, 7);
    auto hit = tlb.lookup(1, 100);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.frame, 7u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, PidsAreSeparateAddressSpaces)
{
    Tlb tlb;
    tlb.insert(1, 100, 7);
    EXPECT_FALSE(tlb.lookup(2, 100).hit);
    tlb.insert(2, 100, 9);
    EXPECT_EQ(tlb.lookup(1, 100).frame, 7u);
    EXPECT_EQ(tlb.lookup(2, 100).frame, 9u);
}

TEST(Tlb, InsertRefreshesExistingMapping)
{
    Tlb tlb;
    tlb.insert(1, 100, 7);
    tlb.insert(1, 100, 8);
    EXPECT_EQ(tlb.lookup(1, 100).frame, 8u);
    EXPECT_EQ(tlb.validEntries(), 1u);
}

TEST(Tlb, InvalidateSingleEntry)
{
    Tlb tlb;
    tlb.insert(1, 100, 7);
    tlb.insert(1, 200, 8);
    EXPECT_TRUE(tlb.invalidate(1, 100));
    EXPECT_FALSE(tlb.invalidate(1, 100));
    EXPECT_FALSE(tlb.lookup(1, 100).hit);
    EXPECT_TRUE(tlb.lookup(1, 200).hit);
    EXPECT_EQ(tlb.stats().flushes, 1u);
}

TEST(Tlb, FlushAll)
{
    Tlb tlb;
    for (std::uint64_t vpn = 0; vpn < 10; ++vpn)
        tlb.insert(0, vpn, vpn);
    EXPECT_EQ(tlb.validEntries(), 10u);
    tlb.flushAll();
    EXPECT_EQ(tlb.validEntries(), 0u);
}

TEST(Tlb, CapacityNeverExceeded)
{
    TlbParams p;
    p.entries = 64; // the paper's TLB
    Tlb tlb(p);
    for (std::uint64_t vpn = 0; vpn < 1000; ++vpn)
        tlb.insert(0, vpn, vpn);
    EXPECT_EQ(tlb.validEntries(), 64u);
}

TEST(Tlb, FullyAssociativeHoldsExactlyCapacityHotSet)
{
    TlbParams p;
    p.entries = 64;
    Tlb tlb(p);
    // A 64-page hot set fits a fully-associative 64-entry TLB: after
    // the first pass, everything hits.
    for (std::uint64_t vpn = 0; vpn < 64; ++vpn) {
        tlb.lookup(0, vpn);
        tlb.insert(0, vpn, vpn);
    }
    tlb.clearStats();
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t vpn = 0; vpn < 64; ++vpn)
            EXPECT_TRUE(tlb.lookup(0, vpn).hit);
    EXPECT_EQ(tlb.stats().missRatio(), 0.0);
}

TEST(Tlb, LruBeatsRandomOnCyclicSlightOverflow)
{
    // A 66-page cyclic sweep over a 64-entry TLB: LRU always misses
    // (pathological), random retains some entries.  This documents
    // why the paper's choice of random replacement is defensible.
    auto run = [](bool lru) {
        TlbParams p;
        p.entries = 64;
        p.lruReplacement = lru;
        Tlb tlb(p);
        for (int round = 0; round < 20; ++round)
            for (std::uint64_t vpn = 0; vpn < 66; ++vpn)
                if (!tlb.lookup(0, vpn).hit)
                    tlb.insert(0, vpn, vpn);
        return tlb.stats().missRatio();
    };
    EXPECT_GT(run(true), run(false));
}

TEST(Tlb, SetAssociativeGeometry)
{
    // The §6.3 future-work TLB: 1 K entries, 2-way.
    TlbParams p;
    p.entries = 1024;
    p.assoc = 2;
    Tlb tlb(p);
    for (std::uint64_t vpn = 0; vpn < 5000; ++vpn)
        tlb.insert(3, vpn, vpn);
    EXPECT_LE(tlb.validEntries(), 1024u);
    // A small hot set still fits.
    Tlb tlb2(p);
    for (std::uint64_t vpn = 0; vpn < 100; ++vpn)
        tlb2.insert(3, vpn, vpn);
    unsigned hits = 0;
    for (std::uint64_t vpn = 0; vpn < 100; ++vpn)
        if (tlb2.lookup(3, vpn).hit)
            ++hits;
    EXPECT_EQ(hits, 100u);
}

class TlbGeometry : public ::testing::TestWithParam<TlbParams>
{
};

TEST_P(TlbGeometry, ProbeAgreesWithLookup)
{
    Tlb tlb(GetParam());
    Rng rng(31);
    for (int i = 0; i < 3000; ++i) {
        Pid pid = static_cast<Pid>(rng.below(4));
        std::uint64_t vpn = rng.below(300);
        bool present = tlb.probe(pid, vpn);
        auto look = tlb.lookup(pid, vpn);
        ASSERT_EQ(present, look.hit);
        if (!look.hit)
            tlb.insert(pid, vpn, vpn * 10);
        ASSERT_TRUE(tlb.probe(pid, vpn));
        ASSERT_LE(tlb.validEntries(), GetParam().entries);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometry,
    ::testing::Values(TlbParams{64, 0, false, 7},
                      TlbParams{64, 0, true, 7},
                      TlbParams{64, 2, false, 7},
                      TlbParams{1024, 2, false, 7},
                      TlbParams{16, 4, true, 7},
                      TlbParams{8, 0, false, 7}));

} // namespace
} // namespace rampage
