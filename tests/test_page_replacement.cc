/**
 * @file
 * Unit and property tests for the page-replacement policies (§4.5).
 */

#include <gtest/gtest.h>

#include <set>

#include "os/page_replacement.hh"

namespace rampage
{
namespace
{

TEST(Clock, SecondChanceSemantics)
{
    // 4 evictable frames (0 pinned).  Fill all, touch 1 and 3; the
    // hand starts at 0: it clears 0's mark, clears 1's, ... and the
    // first frame found unmarked on the second pass is 0.
    ClockPolicy clock(4, 0);
    for (std::uint64_t f = 0; f < 4; ++f)
        clock.fill(f);
    unsigned scan = 0;
    // All referenced: first sweep clears, victim is frame 0.
    EXPECT_EQ(clock.pickVictim(&scan), 0u);
    EXPECT_EQ(scan, 5u); // 4 clears + 1 pick
}

TEST(Clock, TouchedFrameSurvives)
{
    ClockPolicy clock(4, 0);
    for (std::uint64_t f = 0; f < 4; ++f)
        clock.fill(f);
    clock.pickVictim(nullptr); // victim 0; marks now clear, hand at 1
    clock.touch(2);
    // Hand at 1 (unmarked) -> victim 1, never 2.
    EXPECT_EQ(clock.pickVictim(nullptr), 1u);
    // Next: hand at 2 (marked, cleared), 3 unmarked -> victim 3.
    EXPECT_EQ(clock.pickVictim(nullptr), 3u);
}

TEST(Clock, PinnedFramesNeverChosen)
{
    ClockPolicy clock(8, 3);
    for (int i = 0; i < 100; ++i)
        EXPECT_GE(clock.pickVictim(nullptr), 3u);
}

TEST(Fifo, EvictsOldestFill)
{
    FifoPolicy fifo(4, 1);
    fifo.fill(1);
    fifo.fill(2);
    fifo.fill(3);
    EXPECT_EQ(fifo.pickVictim(nullptr), 1u);
    fifo.fill(1); // refilled: now newest
    EXPECT_EQ(fifo.pickVictim(nullptr), 2u);
}

TEST(Lru, EvictsLeastRecentlyTouched)
{
    LruPolicy lru(4, 0);
    for (std::uint64_t f = 0; f < 4; ++f)
        lru.fill(f);
    lru.touch(0);
    lru.touch(2);
    EXPECT_EQ(lru.pickVictim(nullptr), 1u);
}

TEST(Random, StaysInEvictableRange)
{
    RandomPolicy random(16, 4, 9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t victim = random.pickVictim(nullptr);
        EXPECT_GE(victim, 4u);
        EXPECT_LT(victim, 16u);
        seen.insert(victim);
    }
    // All evictable frames get chosen eventually.
    EXPECT_EQ(seen.size(), 12u);
}

TEST(Standby, VictimComesFromListFront)
{
    StandbyPolicy standby(8, 0, 2);
    for (std::uint64_t f = 0; f < 8; ++f)
        standby.fill(f);
    // First pick must nominate 3 pages (fill list of 2 + victim).
    std::uint64_t v1 = standby.pickVictim(nullptr);
    std::uint64_t v2 = standby.pickVictim(nullptr);
    EXPECT_NE(v1, v2);
}

TEST(Standby, TouchRescuesNominatedPage)
{
    StandbyPolicy standby(8, 0, 4);
    for (std::uint64_t f = 0; f < 8; ++f)
        standby.fill(f);
    std::uint64_t victim = standby.pickVictim(nullptr);
    // Four pages now sit on the standby list.  Touch every frame: the
    // standby pages are rescued.
    for (std::uint64_t f = 0; f < 8; ++f)
        if (f != victim)
            standby.touch(f);
    EXPECT_EQ(standby.rescues(), 4u);
    // The policy remains functional after rescues: it still yields a
    // valid evictable frame (frame 0 — the previously discarded and
    // never re-touched frame — is the legitimately coldest choice).
    std::uint64_t v2 = standby.pickVictim(nullptr);
    EXPECT_LT(v2, 8u);
}

TEST(Factory, MakesEveryKind)
{
    for (PageReplKind kind :
         {PageReplKind::Clock, PageReplKind::Fifo, PageReplKind::Random,
          PageReplKind::Lru, PageReplKind::Standby}) {
        auto policy = makePageReplacement(kind, 32, 4, 1, 4);
        ASSERT_NE(policy, nullptr);
        EXPECT_FALSE(policy->name().empty());
        EXPECT_STREQ(pageReplKindName(kind), pageReplKindName(kind));
    }
}

class PolicySweep : public ::testing::TestWithParam<PageReplKind>
{
};

TEST_P(PolicySweep, VictimsAlwaysEvictableUnderChurn)
{
    const std::uint64_t frames = 64;
    const std::uint64_t pinned = 8;
    auto policy = makePageReplacement(GetParam(), frames, pinned, 3, 8);
    Rng rng(GetParam() == PageReplKind::Random ? 1 : 2);

    for (std::uint64_t f = pinned; f < frames; ++f)
        policy->fill(f);

    for (int i = 0; i < 5000; ++i) {
        if (rng.chance(0.6)) {
            policy->touch(pinned + rng.below(frames - pinned));
        } else {
            unsigned scan = 0;
            std::uint64_t victim = policy->pickVictim(&scan);
            ASSERT_GE(victim, pinned);
            ASSERT_LT(victim, frames);
            policy->fill(victim);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(PageReplKind::Clock, PageReplKind::Fifo,
                      PageReplKind::Random, PageReplKind::Lru,
                      PageReplKind::Standby));

// The classic hierarchy: on a looping pattern slightly larger than
// memory, LRU degenerates while clock/standby behave no worse than
// random... exercised at the pager level in test_pager.cc; here we
// check the scan-cost accounting is populated.
TEST(Clock, ScanCostReported)
{
    ClockPolicy clock(16, 0);
    for (std::uint64_t f = 0; f < 16; ++f)
        clock.fill(f);
    unsigned scan = 0;
    clock.pickVictim(&scan);
    EXPECT_GT(scan, 0u);
    EXPECT_LE(scan, 33u);
}

} // namespace
} // namespace rampage
