/**
 * @file
 * Multicore driver proofs.
 *
 * The core/memory seam (CoreFrontend over a shared MemoryBackend) and
 * the N-core round-robin driver must not perturb the single-core
 * model: a run forced through the multicore driver with one core is
 * bit-identical to the legacy driver across all three hierarchy
 * families (at audit levels Off and Boundaries, without timeline
 * tracing — the multicore loop batches per core, so per-reference
 * trace events and paranoid audit cadence legitimately differ).
 * Multicore runs must be deterministic — same stats snapshot run to
 * run and at any SweepRunner parallelism — and pass paranoid audits.
 * Finally the coherence-lite residency invariant must be a real
 * checker: dropping a core's residency bit under a live TLB
 * translation (the stale-private-copy fault) has to trip the
 * coherence.residency audit.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/audit.hh"
#include "core/core_frontend.hh"
#include "core/factory.hh"
#include "core/fault_injection.hh"
#include "core/hierarchy.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/benchmarks.hh"
#include "util/error.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

SimResult
runDriver(const HierarchyConfig &cfg, bool force_multicore,
          AuditLevel level)
{
    SimConfig sim;
    sim.maxRefs = 60'000;
    sim.quantumRefs = 7'000; // ragged final slice on purpose
    sim.auditLevel = level;
    sim.forceMulticoreDriver = force_multicore;
    return simulateSystem(cfg, sim);
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.elapsedPs, b.elapsedPs);
    EXPECT_EQ(a.stallPs, b.stallPs);
    EXPECT_EQ(a.systemName, b.systemName);
    EXPECT_EQ(a.stats.toJson().dump(), b.stats.toJson().dump());
}

class ForcedDriverIdentity
    : public ::testing::TestWithParam<AuditLevel>
{
};

TEST_P(ForcedDriverIdentity, BaselineBitIdentical)
{
    ConventionalConfig cfg = baselineConfig(oneGhz, 128);
    expectIdentical(runDriver(cfg, false, GetParam()),
                    runDriver(cfg, true, GetParam()));
}

TEST_P(ForcedDriverIdentity, RampageBitIdentical)
{
    RampageConfig cfg = rampageConfig(oneGhz, 1024);
    expectIdentical(runDriver(cfg, false, GetParam()),
                    runDriver(cfg, true, GetParam()));
}

TEST_P(ForcedDriverIdentity, RampageSwitchOnMissBitIdentical)
{
    RampageConfig cfg = rampageConfig(oneGhz, 1024, true);
    expectIdentical(runDriver(cfg, false, GetParam()),
                    runDriver(cfg, true, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AuditLevels, ForcedDriverIdentity,
                         ::testing::Values(AuditLevel::Off,
                                           AuditLevel::Boundaries));

// ---------------------------------------------------- multicore runs

SimResult
runCores(const HierarchyConfig &cfg, unsigned cores, AuditLevel level)
{
    SimConfig sim;
    sim.maxRefs = 60'000;
    sim.quantumRefs = 7'000;
    sim.cores = cores;
    sim.auditLevel = level;
    return simulateSystem(cfg, sim);
}

TEST(Multicore, FourCoreRunsAreDeterministic)
{
    for (const HierarchyConfig &cfg :
         {HierarchyConfig(baselineConfig(oneGhz, 128)),
          HierarchyConfig(rampageConfig(oneGhz, 1024)),
          HierarchyConfig(rampageConfig(oneGhz, 1024, true))}) {
        SimResult a = runCores(cfg, 4, AuditLevel::Off);
        SimResult b = runCores(cfg, 4, AuditLevel::Off);
        expectIdentical(a, b);
    }
}

TEST(Multicore, FourCoreRunsPassParanoidAudits)
{
    EXPECT_NO_THROW(
        runCores(baselineConfig(oneGhz, 128), 4, AuditLevel::Paranoid));
    EXPECT_NO_THROW(
        runCores(rampageConfig(oneGhz, 1024), 4, AuditLevel::Paranoid));
    EXPECT_NO_THROW(runCores(rampageConfig(oneGhz, 1024, true), 4,
                             AuditLevel::Paranoid));
}

std::string
dumpWithoutAuditCounters(const StatsSnapshot &stats)
{
    // audit.runs/audit.checks exist only when the auditor is enabled
    // (test_audit.cc's byte-identity test makes the same exclusion);
    // every simulated quantity must still match bit for bit.
    StatsSnapshot out;
    for (const StatsSnapshot::Entry &entry : stats.entries())
        if (entry.name.rfind("audit.", 0) != 0)
            out.addEntry(entry);
    return out.toJson().dump();
}

TEST(Multicore, AuditsAreSideEffectFree)
{
    RampageConfig cfg = rampageConfig(oneGhz, 1024, true);
    SimResult off = runCores(cfg, 4, AuditLevel::Off);
    SimResult paranoid = runCores(cfg, 4, AuditLevel::Paranoid);
    EXPECT_EQ(off.elapsedPs, paranoid.elapsedPs);
    EXPECT_EQ(off.stallPs, paranoid.stallPs);
    EXPECT_EQ(off.systemName, paranoid.systemName);
    EXPECT_EQ(dumpWithoutAuditCounters(off.stats),
              dumpWithoutAuditCounters(paranoid.stats));
}

bool
hasStat(const StatsSnapshot &stats, const std::string &name)
{
    for (const StatsSnapshot::Entry &entry : stats.entries())
        if (entry.name == name)
            return true;
    return false;
}

TEST(Multicore, StatsUsePerCorePrefixes)
{
    SimResult quad = runCores(rampageConfig(oneGhz, 1024), 4,
                              AuditLevel::Off);
    EXPECT_TRUE(hasStat(quad.stats, "core0.l1d.misses"));
    EXPECT_TRUE(hasStat(quad.stats, "core3.tlb.misses"));
    EXPECT_FALSE(hasStat(quad.stats, "l1d.misses"));

    SimResult single = runCores(rampageConfig(oneGhz, 1024), 1,
                                AuditLevel::Off);
    EXPECT_TRUE(hasStat(single.stats, "l1d.misses"));
    EXPECT_FALSE(hasStat(single.stats, "core0.l1d.misses"));
}

TEST(Multicore, SnapshotStableAtAnySweepParallelism)
{
    // The same four-point cores=4 campaign at --jobs 1 and --jobs 4:
    // every point's stats snapshot must be byte-identical, proving
    // multicore runs share no hidden cross-thread state.
    auto campaign = [](unsigned jobs) {
        SweepRunner::Options opts;
        opts.jobs = jobs;
        SweepRunner runner(opts);
        for (std::uint64_t page : {512u, 1024u, 2048u, 4096u})
            runner.add("rampage/" + std::to_string(page), [page] {
                return runCores(rampageConfig(oneGhz, page), 4,
                                AuditLevel::Off);
            });
        return runner.run();
    };
    SweepReport serial = campaign(1);
    SweepReport parallel = campaign(4);
    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    ASSERT_TRUE(serial.allOk());
    ASSERT_TRUE(parallel.allOk());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
        const PointOutcome &a = serial.outcomes[i];
        const PointOutcome &b = parallel.outcomes[i];
        EXPECT_EQ(a.id, b.id);
        ASSERT_TRUE(a.haveResult);
        ASSERT_TRUE(b.haveResult);
        expectIdentical(a.result, b.result);
    }
}

TEST(Multicore, MoreSourcesThanCoresIsRequired)
{
    // The Table 2 workload has 19 programs; a 20-core hierarchy has
    // nothing to schedule on the last core.
    CommonConfig common = defaultCommon(oneGhz);
    EXPECT_GT(makeWorkload().size(), 0u);
    ConventionalConfig cfg = baselineConfig(oneGhz, 128);
    cfg.common.cores = 20;
    SimConfig sim;
    sim.maxRefs = 1'000;
    sim.quantumRefs = 500;
    EXPECT_THROW(simulateSystem(cfg, sim), ConfigError);
    (void)common;
}

TEST(Multicore, CoreCountIsValidated)
{
    ConventionalConfig cfg = baselineConfig(oneGhz, 128);
    cfg.common.cores = 0;
    EXPECT_THROW(validateHierarchyConfig(cfg), ConfigError);
    cfg.common.cores = maxCores + 1;
    EXPECT_THROW(validateHierarchyConfig(cfg), ConfigError);
}

// ------------------------------------------- coherence-lite residency

TEST(Multicore, StalePrivateCopyFaultTripsTheResidencyAudit)
{
    // Warm a four-core RAMpage hierarchy so every core holds live
    // translations, then drop one core's residency bit out from under
    // its TLB — the corruption page replacement would turn into a
    // stale private copy.  The coherence.residency checker must fire.
    HierarchyConfig cfg(rampageConfig(oneGhz, 1024));
    cfg.common().cores = 4;
    auto hier = makeHierarchy(cfg);
    SimConfig sim;
    sim.maxRefs = 40'000;
    sim.quantumRefs = 5'000;
    Simulator(*hier, makeWorkload(), sim).run();

    // Positive control: the warmed hierarchy audits clean.
    Auditor control(AuditLevel::Boundaries);
    EXPECT_NO_THROW(control.auditHierarchy(*hier, "control"));

    FaultInjector injector(parseFaultPlan("stale-private-copy"));
    ASSERT_TRUE(injector.apply(*hier))
        << "warm run left no resident translation to corrupt";

    Auditor auditor(AuditLevel::Boundaries);
    try {
        auditor.auditHierarchy(*hier, "stale private copy");
        FAIL() << "a dropped residency bit passed the audit";
    } catch (const AuditError &err) {
        EXPECT_EQ(err.firstInvariant(), "coherence.residency");
    }
}

TEST(Multicore, InjectedRunIsRejectedEndToEnd)
{
    // The same fault through the simulator's injection seam: the run
    // itself must abort with the residency violation.
    HierarchyConfig cfg(rampageConfig(oneGhz, 1024));
    SimConfig sim;
    sim.maxRefs = 40'000;
    sim.quantumRefs = 5'000;
    sim.cores = 4;
    sim.auditLevel = AuditLevel::Boundaries;
    sim.faultPlan = "stale-private-copy";
    try {
        simulateSystem(cfg, sim);
        FAIL() << "injected run finished clean";
    } catch (const AuditError &err) {
        EXPECT_EQ(err.firstInvariant(), "coherence.residency");
    }
}

} // namespace
} // namespace rampage
