/**
 * @file
 * Tests for the page store's per-pid page-size policy and the paged
 * hierarchy running it (§6.2/§6.3 dynamic-tuning extension).
 */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/paged.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/benchmarks.hh"
#include "os/page_store.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

PageStoreParams
smallParams()
{
    PageStoreParams p;
    p.pageBytes = 512; // base frame size
    p.baseSramBytes = 64 * kib;
    p.osFixedBytes = 8 * kib;
    p.defaultPageBytes = 1024;
    p.pageBytesByPid[1] = 512;
    p.pageBytesByPid[2] = 4096;
    return p;
}

TEST(VarPager, PerPidPageSizes)
{
    PageStore pager(smallParams());
    EXPECT_FALSE(pager.uniform());
    EXPECT_EQ(pager.pageBytes(0), 1024u); // default
    EXPECT_EQ(pager.pageBytes(1), 512u);
    EXPECT_EQ(pager.pageBytes(2), 4096u);
    EXPECT_EQ(pager.pageFrames(2), 8u);
}

TEST(VarPager, FaultMapsAlignedRun)
{
    PageStore pager(smallParams());
    auto fault = pager.handleFault(2, 5); // 8-frame page
    EXPECT_EQ(fault.frame % 8, 0u);
    EXPECT_TRUE(fault.victims.empty()); // cold fill
    auto look = pager.lookup(2, 5);
    EXPECT_TRUE(look.found);
    EXPECT_EQ(look.frame, fault.frame);
}

TEST(VarPager, MixedSizesCoexist)
{
    PageStore pager(smallParams());
    pager.handleFault(1, 10); // 1 frame
    pager.handleFault(2, 20); // 8 frames
    pager.handleFault(0, 30); // 2 frames
    EXPECT_TRUE(pager.lookup(1, 10).found);
    EXPECT_TRUE(pager.lookup(2, 20).found);
    EXPECT_TRUE(pager.lookup(0, 30).found);
    EXPECT_EQ(pager.residentPages(), 3u);
}

TEST(VarPager, LargeFaultEvictsOverlappingSmallPages)
{
    PageStoreParams p = smallParams();
    PageStore pager(p);
    // Fill the SRAM with single-frame pages (pid 1).
    std::uint64_t vpn = 0;
    while (true) {
        std::uint64_t before = pager.residentPages();
        auto fault = pager.handleFault(1, vpn++);
        if (!fault.victims.empty() || pager.residentPages() == before)
            break; // started evicting => memory is full
        if (vpn > 4096)
            break;
    }
    // A big (8-frame) fault must evict several small pages at once.
    auto fault = pager.handleFault(2, 999);
    EXPECT_GE(fault.victims.size(), 2u);
    for (const auto &victim : fault.victims)
        EXPECT_FALSE(pager.lookup(victim.pid, victim.vpn).found);
    EXPECT_TRUE(pager.lookup(2, 999).found);
}

TEST(VarPager, DirtyVictimsReported)
{
    PageStore pager(smallParams());
    auto fault = pager.handleFault(1, 1);
    pager.markDirty(fault.frame);
    // Fill and force churn until page (1,1) gets evicted.
    bool seen_dirty = false;
    for (std::uint64_t vpn = 100; vpn < 1100; ++vpn) {
        auto f = pager.handleFault(1, vpn);
        for (const auto &victim : f.victims)
            if (victim.pid == 1 && victim.vpn == 1)
                seen_dirty = victim.dirty;
        if (!pager.lookup(1, 1).found)
            break;
    }
    EXPECT_TRUE(seen_dirty);
    EXPECT_GE(pager.stats().dirtyWritebacks, 1u);
}

TEST(VarPager, TouchProtectsWindow)
{
    PageStore pager(smallParams());
    auto hot = pager.handleFault(0, 1);
    // Churn with constant touching; after the first full sweep the
    // hot page must survive (window clock second chance).
    bool evicted_after_warm = false;
    bool warmed = false;
    std::uint64_t start = hot.frame;
    for (std::uint64_t vpn = 50; vpn < 50 + 2000; ++vpn) {
        pager.touch(start);
        auto fault = pager.handleFault(0, vpn);
        if (!pager.lookup(0, 1).found) {
            if (warmed) {
                evicted_after_warm = true;
                break;
            }
            start = pager.handleFault(0, 1).frame;
            warmed = true;
        }
        if (!fault.victims.empty())
            warmed = true;
    }
    EXPECT_FALSE(evicted_after_warm);
}

TEST(VarPager, FrameAccountingConsistent)
{
    PageStore pager(smallParams());
    Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
        Pid pid = static_cast<Pid>(rng.below(3));
        std::uint64_t vpn = rng.below(300);
        if (!pager.lookup(pid, vpn).found)
            pager.handleFault(pid, vpn);
        ASSERT_TRUE(pager.lookup(pid, vpn).found);
    }
    EXPECT_GT(pager.residentPages(), 0u);
    EXPECT_GT(pager.stats().faults, 0u);
}

TEST(VarHierarchy, DifferentPidsDifferentPageSizes)
{
    PagedConfig cfg;
    cfg.common = defaultCommon(1'000'000'000ull);
    cfg.pager = smallParams();
    auto hier = makeHierarchy(cfg);

    // pid 2 uses 4 KB pages: one fault covers the whole 4 KB.
    MemRef ref{0x10000000, RefKind::Load, 2};
    hier->access(ref);
    std::uint64_t faults = hier->counts().l2Misses;
    ref.vaddr = 0x10000f00; // same 4 KB page
    hier->access(ref);
    EXPECT_EQ(hier->counts().l2Misses, faults);

    // pid 1 uses 512 B pages: the same two offsets fault twice.
    ref = MemRef{0x10000000, RefKind::Load, 1};
    hier->access(ref);
    faults = hier->counts().l2Misses;
    ref.vaddr = 0x10000f00; // different 512 B page
    hier->access(ref);
    EXPECT_EQ(hier->counts().l2Misses, faults + 1);
}

TEST(VarHierarchy, TransfersPricedAtPerPidPageSize)
{
    PagedConfig cfg;
    cfg.common = defaultCommon(1'000'000'000ull);
    cfg.pager = smallParams();
    auto hier = makeHierarchy(cfg);

    Tick before = hier->counts().dramPs;
    hier->access(MemRef{0x20000000, RefKind::Load, 1}); // 512 B page
    Tick small = hier->counts().dramPs - before;
    EXPECT_EQ(small, 50'000u + 256 * 1250u); // 50ns + 256 beats

    before = hier->counts().dramPs;
    hier->access(MemRef{0x20000000, RefKind::Load, 2}); // 4 KB page
    Tick large = hier->counts().dramPs - before;
    EXPECT_EQ(large, 50'000u + 2048 * 1250u);
}

TEST(VarHierarchy, MatchesFixedPagerWhenUniform)
{
    // With every pid on the same page size, the per-pid policy
    // normalizes to the uniform one at construction, so the two
    // configurations are the *same* machine: identical timelines and
    // identical event counts, not merely close ones.
    SimConfig sim;
    sim.maxRefs = 200'000;
    sim.quantumRefs = 20'000;

    PagedConfig vcfg;
    vcfg.common = defaultCommon(1'000'000'000ull);
    vcfg.pager.pageBytes = 1024;
    vcfg.pager.defaultPageBytes = 1024;
    vcfg.pager.baseSramBytes = 512 * kib;
    auto vhier = makeHierarchy(vcfg);
    EXPECT_TRUE(asPaged(*vhier).pager().uniform());
    Simulator vsim(*vhier, makeWorkload(), sim);
    SimResult var_result = vsim.run();

    RampageConfig fcfg = rampageConfig(1'000'000'000ull, 1024);
    fcfg.pager.baseSramBytes = 512 * kib;
    auto fhier = makeHierarchy(fcfg);
    Simulator fsim(*fhier, makeWorkload(), sim);
    SimResult fixed_result = fsim.run();

    EXPECT_EQ(var_result.elapsedPs, fixed_result.elapsedPs);
    EXPECT_EQ(var_result.counts.l2Misses, fixed_result.counts.l2Misses);
    EXPECT_EQ(var_result.counts.dramReads, fixed_result.counts.dramReads);
}

} // namespace
} // namespace rampage
