/**
 * @file
 * Tests for the Table 1 efficiency math across device configurations
 * (complementing the model-level tests in test_rambus.cc).
 */

#include <gtest/gtest.h>

#include "dram/disk.hh"
#include "dram/efficiency.hh"
#include "dram/rambus.hh"
#include "dram/sdram.hh"

namespace rampage
{
namespace
{

TEST(Efficiency, DefinitionMatchesHandComputation)
{
    DirectRambus rambus;
    // efficiency = ideal streaming time / actual time.
    for (std::uint64_t bytes : {2ull, 64ull, 4096ull}) {
        double ideal_ps = static_cast<double>(bytes) / 1.6e9 * 1e12;
        double actual_ps = static_cast<double>(rambus.readPs(bytes));
        EXPECT_NEAR(rambus.efficiency(bytes), ideal_ps / actual_ps, 1e-9);
    }
}

TEST(Efficiency, ZeroBytesIsZero)
{
    DirectRambus rambus;
    Disk disk;
    EXPECT_DOUBLE_EQ(rambus.efficiency(0), 0.0);
    EXPECT_DOUBLE_EQ(disk.efficiency(0), 0.0);
}

TEST(Efficiency, DiskCrossoverScale)
{
    // The paper's §3.5 point: disk needs ~MB-scale transfers for the
    // efficiency Rambus reaches at ~KB scale.
    Disk disk;
    DirectRambus rambus;
    double rambus_at_4k = rambus.efficiency(4096);
    EXPECT_GT(rambus_at_4k, 0.9);
    EXPECT_LT(disk.efficiency(4096), 0.02);
    // Disk only catches up at hundreds of MB.
    EXPECT_GT(disk.efficiency(400'000'000), 0.5);
}

TEST(Efficiency, SdramTracksRambusAtBlockSizes)
{
    // §3.3: the non-pipelined Rambus model "has similar
    // characteristics to an SDRAM implementation".
    Sdram sdram;
    DirectRambus rambus;
    for (std::uint64_t bytes : {128ull, 512ull, 4096ull}) {
        EXPECT_NEAR(sdram.efficiency(bytes), rambus.efficiency(bytes),
                    0.05);
    }
}

TEST(Efficiency, HalfEfficiencyPoint)
{
    // Efficiency hits 50 % when streaming time equals latency:
    // 50 ns / 0.625 ns-per-byte = 80 bytes for Direct Rambus.
    DirectRambus rambus;
    EXPECT_NEAR(rambus.efficiency(80), 0.5, 1e-9);
}

TEST(Efficiency, InstructionsScaleWithIssueRate)
{
    DirectRambus rambus;
    Tick t = rambus.readPs(1024);
    EXPECT_NEAR(instructionsPerTransfer(t, 4'000'000'000ull),
                4.0 * instructionsPerTransfer(t, 1'000'000'000ull), 1e-6);
}

} // namespace
} // namespace rampage
