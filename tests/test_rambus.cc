/**
 * @file
 * Unit tests for the DRAM timing models, anchored to the numbers the
 * paper quotes: 50 ns access, 2 bytes per 1.25 ns, 1.6 GB/s peak, a
 * 4 KB transfer costing ~2,600 instructions at 1 GHz, and the disk
 * comparison (10 ms, 40 MB/s => ~10 M instructions per 4 KB).
 */

#include <gtest/gtest.h>

#include "dram/disk.hh"
#include "dram/efficiency.hh"
#include "dram/rambus.hh"
#include "dram/sdram.hh"

namespace rampage
{
namespace
{

TEST(DirectRambus, PaperTimingNumbers)
{
    DirectRambus rambus;
    // 50 ns before the first datum.
    EXPECT_EQ(rambus.readPs(0), 50'000u);
    // 2 bytes per 1.25 ns beat.
    EXPECT_EQ(rambus.readPs(2), 50'000u + 1250u);
    EXPECT_EQ(rambus.readPs(128), 50'000u + 64 * 1250u);
    // The paper's example: a 4 KB transfer is 50 ns + 2048 beats
    // = 2610 ns, i.e. ~2,600 instructions at 1 GHz.
    EXPECT_EQ(rambus.readPs(4096), 2'610'000u);
}

TEST(DirectRambus, OddByteCountRoundsUpToBeat)
{
    DirectRambus rambus;
    EXPECT_EQ(rambus.readPs(1), rambus.readPs(2));
    EXPECT_EQ(rambus.readPs(3), rambus.readPs(4));
}

TEST(DirectRambus, WritesMatchReads)
{
    DirectRambus rambus;
    for (std::uint64_t bytes : {2ull, 128ull, 4096ull})
        EXPECT_EQ(rambus.writePs(bytes), rambus.readPs(bytes));
}

TEST(DirectRambus, PeakBandwidth)
{
    DirectRambus rambus;
    // 2 B / 1.25 ns = 1.6e9 B/s (the paper's "1.5 Gbyte/s").
    EXPECT_NEAR(rambus.peakBandwidth(), 1.6e9, 1e3);
}

TEST(DirectRambus, InstructionsPerTransferPaperExamples)
{
    DirectRambus rambus;
    Disk disk;
    // ~2,600 instructions for 4 KB over Rambus at 1 GHz.
    EXPECT_NEAR(instructionsPerTransfer(rambus.readPs(4096), 1'000'000'000),
                2610.0, 1.0);
    // ~10 M instructions for 4 KB from disk at 1 GHz.
    EXPECT_NEAR(instructionsPerTransfer(disk.readPs(4096), 1'000'000'000),
                1.01e7, 2e5);
}

TEST(DirectRambus, EfficiencyMonotoneInSize)
{
    DirectRambus rambus;
    double prev = 0.0;
    for (std::uint64_t bytes = 2; bytes <= 1 << 20; bytes *= 2) {
        double eff = rambus.efficiency(bytes);
        EXPECT_GT(eff, prev);
        EXPECT_LE(eff, 1.0);
        prev = eff;
    }
    // Large transfers approach full utilization.
    EXPECT_GT(rambus.efficiency(4 << 20), 0.98);
    // Tiny transfers are dominated by the access latency.
    EXPECT_LT(rambus.efficiency(2), 0.03);
}

TEST(DirectRambus, BurstNonPipelinedIsLinear)
{
    DirectRambus rambus;
    EXPECT_EQ(rambus.burstPs(128, 10), 10 * rambus.readPs(128));
    EXPECT_EQ(rambus.burstPs(128, 0), 0u);
}

TEST(DirectRambus, BurstPipelinedHidesLatency)
{
    RambusConfig cfg;
    cfg.pipelineDepth = 64;
    DirectRambus piped(cfg);
    DirectRambus plain;

    // A deep pipeline hides all but the first access latency once the
    // stream time per transaction exceeds nothing at all: total =
    // latency + n * stream.
    Tick stream = piped.streamPs(128);
    EXPECT_EQ(piped.burstPs(128, 100), 50'000u + 100 * stream);
    EXPECT_LT(piped.burstPs(128, 100), plain.burstPs(128, 100));
    // A single transaction costs the same either way.
    EXPECT_EQ(piped.burstPs(128, 1), plain.burstPs(128, 1));
}

TEST(DirectRambus, BurstShallowPipelineExposesResidualLatency)
{
    RambusConfig cfg;
    cfg.pipelineDepth = 2;
    DirectRambus piped(cfg);
    // With depth 2, each later transaction hides at most one
    // transaction's worth of streaming behind the latency.
    Tick stream = piped.streamPs(16); // 8 beats = 10 ns
    Tick exposed = 50'000 - stream;
    EXPECT_EQ(piped.burstPs(16, 3), 50'000u + 3 * stream + 2 * exposed);
}

TEST(Sdram, PaperComparablePeak)
{
    Sdram sdram;
    // 128-bit bus at 10 ns = 1.6 GB/s, same peak as Direct Rambus.
    DirectRambus rambus;
    EXPECT_NEAR(sdram.peakBandwidth(), rambus.peakBandwidth(), 1e3);
    // 50 ns + one bus cycle for 16 bytes.
    EXPECT_EQ(sdram.readPs(16), 60'000u);
    EXPECT_EQ(sdram.readPs(17), 70'000u);
}

TEST(Disk, TimingModel)
{
    Disk disk;
    // 10 ms positioning dominates small transfers.
    EXPECT_EQ(disk.readPs(0), 10 * psPerMs);
    // 40 MB/s streaming: 4 MB takes ~0.1 s + latency.
    EXPECT_NEAR(static_cast<double>(disk.readPs(40'000'000)),
                static_cast<double>(10 * psPerMs + psPerSec), 1e9);
}

TEST(EfficiencyTable, PaperTable1Shape)
{
    auto rows = computeEfficiencyTable();
    ASSERT_FALSE(rows.empty());
    for (std::size_t i = 1; i < rows.size(); ++i) {
        // Efficiency grows with the transfer unit for every device.
        EXPECT_GE(rows[i].rambusEfficiency, rows[i - 1].rambusEfficiency);
        EXPECT_GE(rows[i].diskEfficiency, rows[i - 1].diskEfficiency);
    }
    for (const auto &row : rows) {
        // Disk is always (much) less efficient than Rambus at equal
        // transfer sizes in this range, and pipelining never hurts.
        EXPECT_LT(row.diskEfficiency, row.rambusEfficiency);
        EXPECT_GE(row.rambusPipelined, row.rambusEfficiency - 1e-9);
        EXPECT_LE(row.rambusPipelined, 1.0);
    }
    // The paper's §3.3 claim: pipelined Direct Rambus achieves ~95 %
    // of peak on units as small as 2 bytes.
    EXPECT_GT(rows.front().rambusPipelined, 0.9);
    EXPECT_EQ(rows.front().bytes, 2u);
}

TEST(EfficiencyTable, CustomSizes)
{
    auto rows = computeEfficiencyTable({4096});
    ASSERT_EQ(rows.size(), 1u);
    // 4 KB: 2560 ns streaming vs 2610 ns total = 98 %.
    EXPECT_NEAR(rows[0].rambusEfficiency, 2560.0 / 2610.0, 1e-6);
}

} // namespace
} // namespace rampage
