/**
 * @file
 * Malformed-stream tests for the --isolate outcome codec.  The pipe
 * bytes come from a child that may have died mid-write (or, in
 * principle, from a corrupted stream), so the decoder's contract is:
 * a well-formed buffer round-trips bit-exactly; every other buffer
 * throws InternalError — never a crash, never an out-of-memory
 * allocation sized by an attacker-controlled length prefix.
 */

#include <string>

#include <gtest/gtest.h>

#include "core/point_ipc.hh"
#include "core/sweep.hh"
#include "util/error.hh"

namespace rampage
{
namespace
{

/** A rich outcome exercising every encoder path. */
PointOutcome
richOutcome()
{
    PointOutcome outcome;
    outcome.id = "p-robust";
    outcome.status = PointStatus::Ok;
    outcome.wallSeconds = 1.25;
    outcome.refsPerSecond = 3.5e6;
    outcome.attempts = 2;
    outcome.debugTail = {"ring line one", "ring line two"};
    outcome.haveResult = true;
    outcome.result.elapsedPs = 123456789;
    outcome.result.counts.refs = 60000;
    outcome.result.systemName = "robustness fixture";
    outcome.result.issueHz = 1'000'000'000;
    outcome.result.stats.addCounter("a.counter", "a counter", 7);
    outcome.result.stats.addValue("a.value", "a value", -0.0);
    StatsSnapshot::Entry hist;
    hist.name = "a.histogram";
    hist.desc = "a histogram";
    hist.kind = StatsSnapshot::Kind::Histogram;
    hist.buckets = {1, 2, 3, 4};
    hist.samples = 10;
    hist.sum = 99;
    outcome.result.stats.addEntry(std::move(hist));
    return outcome;
}

TEST(PointIpcRobustness, RoundTripSurvives)
{
    std::string bytes = encodePointOutcome(richOutcome());
    PointOutcome back = decodePointOutcome(bytes);
    EXPECT_EQ(back.id, "p-robust");
    ASSERT_TRUE(back.haveResult);
    EXPECT_EQ(back.result.counts.refs, 60000u);
    ASSERT_EQ(back.result.stats.entries().size(), 3u);
    EXPECT_EQ(back.result.stats.entries()[2].buckets.size(), 4u);
    // Re-encoding the decoded outcome must reproduce the bytes.
    EXPECT_EQ(encodePointOutcome(back), bytes);
}

TEST(PointIpcRobustness, EveryTruncationThrowsInternalError)
{
    std::string bytes = encodePointOutcome(richOutcome());
    for (std::size_t len = 0; len < bytes.size(); ++len)
        EXPECT_THROW(decodePointOutcome(bytes.substr(0, len)),
                     InternalError)
            << "truncated to " << len << " of " << bytes.size();
}

TEST(PointIpcRobustness, ByteCorruptionNeverEscapesTheTaxonomy)
{
    // Force every byte to 0xFF in turn.  Length prefixes become
    // absurd counts; the decoder must reject them up front (bounded
    // against the bytes remaining) instead of reserving gigabytes,
    // and nothing may escape as a non-InternalError exception.
    std::string bytes = encodePointOutcome(richOutcome());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (static_cast<unsigned char>(bytes[i]) == 0xff)
            continue;
        std::string corrupt = bytes;
        corrupt[i] = static_cast<char>(0xff);
        try {
            decodePointOutcome(corrupt); // corrupted payload bytes
        } catch (const InternalError &) {
            // corrupted structure: the right category
        } catch (const std::exception &err) {
            FAIL() << "byte " << i
                   << " corruption escaped as: " << err.what();
        }
    }
}

TEST(PointIpcRobustness, HugeDeclaredCountsRejectedBeforeAllocation)
{
    // Hand-build the smallest buffer whose debug-tail count claims
    // 2^32-1 strings: version, id "", status, category, error "",
    // invariant "", scope "", 0 violations, two doubles, attempts,
    // refsAtCancel, signal, then the hostile count.
    std::string bytes;
    bytes.push_back(2);                     // codec version
    auto u32 = [&bytes](std::uint32_t v) {
        for (int shift = 0; shift < 32; shift += 8)
            bytes.push_back(static_cast<char>((v >> shift) & 0xff));
    };
    auto u64 = [&bytes](std::uint64_t v) {
        for (int shift = 0; shift < 64; shift += 8)
            bytes.push_back(static_cast<char>((v >> shift) & 0xff));
    };
    u32(0);               // id ""
    bytes.push_back(0);   // status
    bytes.push_back(0);   // error category
    u32(0);               // error ""
    u32(0);               // auditInvariant ""
    u32(0);               // auditScope ""
    u32(0);               // no violations
    u64(0);               // wallSeconds
    u64(0);               // refsPerSecond
    u32(1);               // attempts
    u64(0);               // refsAtCancel
    u32(0);               // signalNumber
    u32(0xffffffffu);     // debugTail: 4G strings declared
    EXPECT_THROW(decodePointOutcome(bytes), InternalError);
}

TEST(PointIpcRobustness, TornFinalRecordKeepsCompleteOnes)
{
    std::string stream;
    std::string payload = "abc";
    stream.push_back(pointIpcRingTag);
    stream.push_back(3);
    stream.append(3, '\0');
    stream += payload;
    // A second record whose declared length exceeds what follows.
    stream.push_back(pointIpcOutcomeTag);
    stream.push_back(100);
    stream.append(3, '\0');
    stream += "short";

    bool torn = false;
    std::vector<FramedRecord> records =
        parseFramedRecords(stream, torn);
    EXPECT_TRUE(torn);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].tag, pointIpcRingTag);
    EXPECT_EQ(records[0].payload, "abc");
}

} // namespace
} // namespace rampage
