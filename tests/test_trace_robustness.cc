/**
 * @file
 * Hardened trace-ingestion tests: every damage pattern the
 * fault-injecting corrupter can produce must either raise TraceError
 * (strict mode, or structural header damage) or degrade predictably
 * (lenient skip-and-warn within the malformed budget).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/corrupter.hh"
#include "trace/file_format.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{
namespace
{

class TraceRobustness : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override
    {
        setQuiet(false);
        std::remove(path.c_str());
    }

    /** Write a healthy native trace of `count` records. */
    void writeNative(std::uint64_t count)
    {
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < count; ++i)
            writer.write(ref(i));
    }

    /** Write a healthy din trace of `count` records. */
    void writeDin(std::uint64_t count)
    {
        TraceWriter writer(path, true);
        for (std::uint64_t i = 0; i < count; ++i)
            writer.write(ref(i));
    }

    static MemRef ref(std::uint64_t i)
    {
        MemRef r;
        r.vaddr = 0x1000 + 8 * i;
        r.kind = static_cast<RefKind>(i % 3);
        r.pid = 7;
        return r;
    }

    static std::uint64_t countRefs(FileTraceSource &source)
    {
        MemRef r;
        std::uint64_t n = 0;
        while (source.next(r))
            ++n;
        return n;
    }

    std::string path = std::string(::testing::TempDir()) +
                       "/rampage_robust.trace";
    TraceReadOptions strict{true, 0};
};

TEST_F(TraceRobustness, TruncatedHeaderIsRejected)
{
    writeNative(4);
    truncateTraceFile(path, 5); // mid-magic
    EXPECT_THROW({ FileTraceSource source(path); }, TraceError);
    try {
        FileTraceSource source(path);
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("header"),
                  std::string::npos);
    }
}

TEST_F(TraceRobustness, BadMagicFallsBackToDinAndFailsTheBudget)
{
    // A flipped first byte means the file is not native; the din
    // reader then sees binary garbage, which strict mode rejects.
    writeNative(4);
    corruptTraceMagic(path);
    FileTraceSource probe(path);
    EXPECT_FALSE(probe.isNative());
    EXPECT_THROW(
        {
            FileTraceSource source(path, 0, strict);
            MemRef r;
            source.next(r);
        },
        TraceError);
}

TEST_F(TraceRobustness, UnsupportedVersionIsRejected)
{
    writeNative(4);
    corruptTraceVersion(path, '9');
    try {
        FileTraceSource source(path);
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST_F(TraceRobustness, TruncatedTailStrictThrows)
{
    writeNative(10);
    truncateTraceFile(path, 8 + 10 * 11 - 3); // clip last record
    EXPECT_THROW({ FileTraceSource source(path, 0, strict); },
                 TraceError);
}

TEST_F(TraceRobustness, TruncatedTailLenientDropsOnlyTheTail)
{
    writeNative(10);
    truncateTraceFile(path, 8 + 10 * 11 - 3);
    FileTraceSource source(path);
    EXPECT_TRUE(source.isNative());
    EXPECT_EQ(source.recordCount(), 9u);
    EXPECT_EQ(countRefs(source), 9u);
}

TEST_F(TraceRobustness, CorruptRecordKindStrictThrows)
{
    writeNative(10);
    corruptNativeRecordKind(path, 4, 0xcc);
    FileTraceSource source(path, 0, strict);
    MemRef r;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(source.next(r));
    EXPECT_THROW(source.next(r), TraceError);
}

TEST_F(TraceRobustness, CorruptRecordKindLenientSkipsIt)
{
    writeNative(10);
    corruptNativeRecordKind(path, 4, 0xcc);
    FileTraceSource source(path);
    EXPECT_EQ(countRefs(source), 9u);
    EXPECT_EQ(source.malformedSkipped(), 1u);
}

TEST_F(TraceRobustness, LenientBudgetCapsNativeDamage)
{
    writeNative(10);
    for (std::uint64_t i = 0; i < 5; ++i)
        corruptNativeRecordKind(path, i, 0xcc);
    TraceReadOptions lenient;
    lenient.malformedBudget = 3;
    FileTraceSource source(path, 0, lenient);
    MemRef r;
    EXPECT_THROW(
        {
            while (source.next(r)) {
            }
        },
        TraceError);
}

TEST_F(TraceRobustness, MalformedDinLinesSkippedWithinBudget)
{
    writeDin(6);
    appendMalformedDinLines(path, 4);
    FileTraceSource source(path, 3);
    EXPECT_EQ(countRefs(source), 6u);
    EXPECT_EQ(source.malformedSkipped(), 4u);
}

TEST_F(TraceRobustness, MalformedDinLinesStrictThrow)
{
    writeDin(2);
    appendMalformedDinLines(path, 1);
    FileTraceSource source(path, 3, strict);
    MemRef r;
    ASSERT_TRUE(source.next(r));
    ASSERT_TRUE(source.next(r));
    EXPECT_THROW(source.next(r), TraceError);
}

TEST_F(TraceRobustness, MalformedDinBudgetExceededThrows)
{
    writeDin(2);
    appendMalformedDinLines(path, 8);
    TraceReadOptions lenient;
    lenient.malformedBudget = 5;
    FileTraceSource source(path, 3, lenient);
    MemRef r;
    EXPECT_THROW(
        {
            while (source.next(r)) {
            }
        },
        TraceError);
}

TEST_F(TraceRobustness, BudgetIsPerPass)
{
    // reset() starts a fresh pass: replaying damaged-but-within-budget
    // content must not accumulate into a spurious budget trip.
    writeDin(3);
    appendMalformedDinLines(path, 2);
    TraceReadOptions lenient;
    lenient.malformedBudget = 3;
    FileTraceSource source(path, 3, lenient);
    EXPECT_EQ(countRefs(source), 3u);
    source.reset();
    EXPECT_EQ(countRefs(source), 3u);
    EXPECT_EQ(source.malformedSkipped(), 2u);
}

TEST_F(TraceRobustness, MissingFileThrowsTraceError)
{
    try {
        FileTraceSource source("/nonexistent/rampage.trace");
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Trace);
    }
}

} // namespace
} // namespace rampage
