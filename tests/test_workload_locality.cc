/**
 * @file
 * Characterisation tests of the synthetic workload's locality — the
 * properties the calibration (DESIGN.md §7) depends on.  If these
 * drift, the reproduced tables drift with them.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/benchmarks.hh"
#include "trace/synthetic.hh"

namespace rampage
{
namespace
{

/** Run `n` references of a roster program through a lambda. */
template <typename Fn>
void
sample(const std::string &name, std::uint64_t n, Fn &&fn)
{
    SyntheticProgram prog(benchmarkProfile(name), 0);
    MemRef ref;
    for (std::uint64_t i = 0; i < n; ++i) {
        prog.next(ref);
        fn(ref);
    }
}

TEST(WorkloadLocality, InstructionStreamMostlySequential)
{
    // branchTakenRate = 0.15: ~85 % of fetches are pc + 4.
    std::uint64_t sequential = 0, fetches = 0;
    Addr prev = 0;
    sample("ora", 500'000, [&](const MemRef &ref) {
        if (!ref.isInstr())
            return;
        if (fetches > 0 && ref.vaddr == prev + 4)
            ++sequential;
        prev = ref.vaddr;
        ++fetches;
    });
    double rate = static_cast<double>(sequential) /
                  static_cast<double>(fetches);
    EXPECT_GT(rate, 0.80);
    EXPECT_LT(rate, 0.92);
}

TEST(WorkloadLocality, TlbReachBoundedAt4KPages)
{
    // The conventional hierarchy's flat Fig 4 baseline requires the
    // instantaneous 4 KB-page working set to sit well inside a
    // 64-entry TLB for every program.
    for (const char *name : {"gcc", "nasa7", "sed", "swm256"}) {
        std::map<std::uint64_t, std::uint64_t> last_use;
        std::uint64_t i = 0, far_reuse = 0, checks = 0;
        sample(name, 500'000, [&](const MemRef &ref) {
            std::uint64_t page = ref.vaddr >> 12;
            auto it = last_use.find(page);
            if (it != last_use.end()) {
                ++checks;
                // Reuse distance proxy: how many refs since last use.
                if (i - it->second > 200'000)
                    ++far_reuse;
            }
            last_use[page] = i;
            ++i;
        });
        // Far reuses are rare: pages are either hot or abandoned.
        EXPECT_LT(static_cast<double>(far_reuse) /
                      static_cast<double>(checks + 1),
                  0.01)
            << name;
    }
}

TEST(WorkloadLocality, StreamersTouchLargeFootprints)
{
    // The fp streamers must sweep multi-megabyte footprints (that is
    // where the 4 MB-level capacity pressure comes from)...
    std::set<std::uint64_t> pages;
    sample("swm256", 3'000'000, [&](const MemRef &ref) {
        if (!ref.isInstr())
            pages.insert(ref.vaddr >> 12);
    });
    EXPECT_GT(pages.size() * 4096, 1 * mib);
}

TEST(WorkloadLocality, UtilitiesStayCompact)
{
    // ... while the Unix utilities stay in hundreds of kilobytes.
    std::set<std::uint64_t> pages;
    sample("sed", 3'000'000, [&](const MemRef &ref) {
        pages.insert(ref.vaddr >> 12);
    });
    EXPECT_LT(pages.size() * 4096, 640 * kib);
}

TEST(WorkloadLocality, DataRefsAreBursty)
{
    // Consecutive data references cluster: the median distance
    // between successive data refs is small (cursor walks), which is
    // what keeps small-page TLB behaviour in the paper's range.
    std::uint64_t near = 0, total = 0;
    Addr prev = 0;
    bool first = true;
    sample("compress", 500'000, [&](const MemRef &ref) {
        if (ref.isInstr())
            return;
        if (!first) {
            Addr delta = ref.vaddr > prev ? ref.vaddr - prev
                                          : prev - ref.vaddr;
            ++total;
            if (delta <= 4096)
                ++near;
        }
        prev = ref.vaddr;
        first = false;
    });
    EXPECT_GT(static_cast<double>(near) / static_cast<double>(total),
              0.25);
}

TEST(WorkloadLocality, PhaseDriftChangesHotPages)
{
    // Hot heap windows move across phases: the hot page set of an
    // early window and a late window differ substantially.  This is
    // the capacity-traffic mechanism for the non-streamers.
    auto hot_pages = [](std::uint64_t skip, std::uint64_t n) {
        SyntheticProgram prog(benchmarkProfile("yacc"), 0);
        MemRef ref;
        for (std::uint64_t i = 0; i < skip; ++i)
            prog.next(ref);
        std::map<std::uint64_t, unsigned> counts;
        for (std::uint64_t i = 0; i < n; ++i) {
            prog.next(ref);
            if (!ref.isInstr() &&
                ref.vaddr >= SyntheticProgram::heapBase)
                ++counts[ref.vaddr >> 12];
        }
        std::set<std::uint64_t> hot;
        for (const auto &[page, count] : counts)
            if (count > 50)
                hot.insert(page);
        return hot;
    };
    auto early = hot_pages(0, 400'000);
    auto late = hot_pages(4'000'000, 400'000);
    ASSERT_FALSE(early.empty());
    ASSERT_FALSE(late.empty());
    std::size_t shared = 0;
    for (std::uint64_t page : early)
        shared += late.count(page);
    EXPECT_LT(static_cast<double>(shared) /
                  static_cast<double>(early.size()),
              0.6);
}

TEST(WorkloadLocality, StoresNeverExceedLoads)
{
    for (const ProgramProfile &profile : benchmarkRoster()) {
        SyntheticProgram prog(profile, 0);
        MemRef ref;
        std::uint64_t loads = 0, stores = 0;
        for (int i = 0; i < 300'000; ++i) {
            prog.next(ref);
            if (ref.kind == RefKind::Load)
                ++loads;
            else if (ref.kind == RefKind::Store)
                ++stores;
        }
        EXPECT_LT(stores, loads) << profile.name;
    }
}

} // namespace
} // namespace rampage
