/**
 * @file
 * Tests for the frequency-separable cost model (§4.3): SRAM-level
 * cycles scale with the issue rate, DRAM picoseconds do not.
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"

namespace rampage
{
namespace
{

EventCounts
sampleCounts()
{
    EventCounts c;
    c.l1iCycles = 1000;
    c.l1dCycles = 200;
    c.l2Cycles = 2400;
    c.dramPs = 5'000'000;
    c.traceRefs = 900;
    c.tlbMissOverheadRefs = 60;
    c.faultOverheadRefs = 30;
    return c;
}

TEST(CostModel, PricesEachLevel)
{
    EventCounts c = sampleCounts();
    TimeBreakdown bd = priceEvents(c, 1'000'000'000ull);
    EXPECT_EQ(bd.at(TimeLevel::L1I), 1000 * 1000u);
    EXPECT_EQ(bd.at(TimeLevel::L1D), 200 * 1000u);
    EXPECT_EQ(bd.at(TimeLevel::L2), 2400 * 1000u);
    EXPECT_EQ(bd.at(TimeLevel::Dram), 5'000'000u);
}

TEST(CostModel, CyclesScaleWithIssueRateDramDoesNot)
{
    EventCounts c = sampleCounts();
    TimeBreakdown slow = priceEvents(c, 200'000'000ull);
    TimeBreakdown fast = priceEvents(c, 4'000'000'000ull);
    // SRAM-level time shrinks 20x between 200 MHz and 4 GHz.
    EXPECT_EQ(slow.at(TimeLevel::L1I), 20 * fast.at(TimeLevel::L1I));
    EXPECT_EQ(slow.at(TimeLevel::L2), 20 * fast.at(TimeLevel::L2));
    // DRAM time is issue-rate invariant.
    EXPECT_EQ(slow.at(TimeLevel::Dram), fast.at(TimeLevel::Dram));
    // Hence DRAM's *fraction* grows with CPU speed — the CPU-DRAM
    // gap the paper studies.
    EXPECT_GT(fast.fraction(TimeLevel::Dram),
              slow.fraction(TimeLevel::Dram));
}

TEST(CostModel, StallTimeChargedToDram)
{
    EventCounts c = sampleCounts();
    TimeBreakdown bd = priceEvents(c, 1'000'000'000ull, 777);
    EXPECT_EQ(bd.at(TimeLevel::Dram), 5'000'777u);
}

TEST(CostModel, TotalTime)
{
    EventCounts c = sampleCounts();
    EXPECT_EQ(totalTimePs(c, 1'000'000'000ull),
              (1000 + 200 + 2400) * 1000u + 5'000'000u);
}

TEST(CostModel, OverheadRatioIsFig4Definition)
{
    EventCounts c = sampleCounts();
    EXPECT_DOUBLE_EQ(c.overheadRatio(), (60.0 + 30.0) / 900.0);
    EventCounts empty;
    EXPECT_DOUBLE_EQ(empty.overheadRatio(), 0.0);
}

TEST(CostModel, AccumulateCombinesRuns)
{
    EventCounts a = sampleCounts();
    EventCounts b = sampleCounts();
    a += b;
    EXPECT_EQ(a.l1iCycles, 2000u);
    EXPECT_EQ(a.dramPs, 10'000'000u);
    EXPECT_EQ(a.traceRefs, 1800u);
}

} // namespace
} // namespace rampage
