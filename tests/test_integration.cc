/**
 * @file
 * End-to-end integration tests: small-scale versions of the paper's
 * experiments asserting the *qualitative* results hold (the benches
 * regenerate the full tables; these guard the shapes in CI time).
 */

#include <gtest/gtest.h>

#include "core/conventional.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/benchmarks.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;
constexpr std::uint64_t fourGhz = 4'000'000'000ull;

SimConfig
integrationSim()
{
    SimConfig sim;
    sim.maxRefs = 1'500'000;
    sim.quantumRefs = 60'000;
    return sim;
}

SimResult
runBaseline(std::uint64_t block)
{
    return simulateSystem(baselineConfig(oneGhz, block),
                                integrationSim());
}

SimResult
runRampage(std::uint64_t page)
{
    return simulateSystem(rampageConfig(oneGhz, page),
                           integrationSim());
}

TEST(Integration, RampageFullyAssociativeMissesBelowDirectMapped)
{
    // §1: "RAMpage is able to achieve full associativity ... the
    // resulting reduction in misses" — at equal transfer size the
    // paged SRAM must miss less than the direct-mapped cache.
    for (std::uint64_t size : {512ull, 1024ull, 4096ull}) {
        SimResult cache = runBaseline(size);
        SimResult paged = runRampage(size);
        EXPECT_LT(paged.counts.l2Misses, cache.counts.l2Misses)
            << "at block/page " << size;
    }
}

TEST(Integration, TwoWayMissesBetweenDirectMappedAndRampage)
{
    // §4.7/§5.5: hardware 2-way associativity removes some of the
    // conflict misses full (software) associativity removes.
    std::uint64_t block = 2048;
    SimResult dm = runBaseline(block);
    SimResult two = simulateSystem(twoWayConfig(oneGhz, block),
                                         integrationSim());
    SimResult paged = runRampage(block);
    EXPECT_LT(two.counts.l2Misses, dm.counts.l2Misses);
    EXPECT_LE(paged.counts.l2Misses, two.counts.l2Misses);
}

TEST(Integration, RampageTlbOverheadFallsWithPageSize)
{
    // Figure 4's RAMpage curve: handler overhead collapses as the
    // SRAM page (and so the TLB reach) grows.
    double small = runRampage(128).counts.overheadRatio();
    double mid = runRampage(1024).counts.overheadRatio();
    double large = runRampage(4096).counts.overheadRatio();
    EXPECT_GT(small, 3 * mid);
    EXPECT_GT(mid, large);
}

TEST(Integration, BaselineOverheadFlatAcrossBlockSizes)
{
    // Figure 4's baseline: "the same across all block sizes" — the
    // conventional TLB maps fixed 4 KB DRAM pages.
    double at128 = runBaseline(128).counts.overheadRatio();
    double at4096 = runBaseline(4096).counts.overheadRatio();
    EXPECT_NEAR(at128, at4096, 0.2 * at128 + 1e-6);
    EXPECT_LT(at128, 0.10); // small, unlike RAMpage at 128 B
}

TEST(Integration, DramFractionGrowsWithIssueRate)
{
    // Figures 2 vs 3: scaling the CPU without scaling DRAM pushes
    // time into the DRAM level.
    SimResult result = runBaseline(1024);
    double slow = priceEvents(result.counts, 200'000'000ull)
                      .fraction(TimeLevel::Dram);
    double fast = priceEvents(result.counts, fourGhz)
                      .fraction(TimeLevel::Dram);
    EXPECT_GT(fast, 2 * slow);
}

TEST(Integration, RampageSpendsSmallerDramFractionThanBaseline)
{
    // Figures 2-3: the software-managed hierarchy is more tolerant
    // of DRAM latency (smaller DRAM share at its best page size).
    SimResult cache = runBaseline(1024);
    SimResult paged = runRampage(1024);
    double cache_dram = priceEvents(cache.counts, fourGhz)
                            .fraction(TimeLevel::Dram);
    double paged_dram = priceEvents(paged.counts, fourGhz)
                            .fraction(TimeLevel::Dram);
    EXPECT_LT(paged_dram, cache_dram);
}

TEST(Integration, RampageAdvantageGrowsWithSpeedGap)
{
    // The headline (§5.2): RAMpage's best time improves on the
    // baseline's best as the issue rate grows.
    SimResult cache = runBaseline(128);   // baseline's best block
    SimResult paged = runRampage(1024);   // RAMpage's best page
    double ratio_slow =
        static_cast<double>(totalTimePs(cache.counts, 200'000'000ull)) /
        static_cast<double>(totalTimePs(paged.counts, 200'000'000ull));
    double ratio_fast =
        static_cast<double>(totalTimePs(cache.counts, fourGhz)) /
        static_cast<double>(totalTimePs(paged.counts, fourGhz));
    EXPECT_GT(ratio_fast, ratio_slow);
    // At 4 GHz, RAMpage is clearly faster.
    EXPECT_GT(ratio_fast, 1.05);
}

TEST(Integration, SwitchOnMissWinsAtHighIssueRate)
{
    // Table 4 at 4 GHz: overlapping transfers beats blocking.
    SimConfig sim = integrationSim();
    SimResult blocking = simulateSystem(
        rampageConfig(fourGhz, 4096, false), sim);
    SimResult switching = simulateSystem(
        rampageConfig(fourGhz, 4096, true), sim);
    EXPECT_LT(switching.elapsedPs, blocking.elapsedPs);
}

TEST(Integration, FullWorkloadPopulatesAllPrograms)
{
    // All 18 programs execute under the default interleave.
    SimConfig sim;
    sim.maxRefs = 18 * 30'000;
    sim.quantumRefs = 30'000;
    ConventionalHierarchy hier(baselineConfig(oneGhz, 128));
    Simulator driver(hier, makeWorkload(), sim);
    SimResult result = driver.run();
    EXPECT_EQ(result.counts.contextSwitches, 18u);
}

} // namespace
} // namespace rampage
