/**
 * @file
 * Tests for the synthetic trace generator and the Table 2 roster.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "trace/benchmarks.hh"
#include "trace/synthetic.hh"

namespace rampage
{
namespace
{

ProgramProfile
testProfile()
{
    ProgramProfile p;
    p.name = "test";
    p.seed = 1234;
    p.dataPerInstr = 0.30;
    return p;
}

TEST(Synthetic, DeterministicForSameSeed)
{
    SyntheticProgram a(testProfile(), 0), b(testProfile(), 0);
    MemRef ra, rb;
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra.vaddr, rb.vaddr);
        ASSERT_EQ(ra.kind, rb.kind);
    }
}

TEST(Synthetic, ResetReproducesStream)
{
    SyntheticProgram prog(testProfile(), 0);
    std::vector<MemRef> first;
    MemRef ref;
    for (int i = 0; i < 5000; ++i) {
        prog.next(ref);
        first.push_back(ref);
    }
    prog.reset();
    for (int i = 0; i < 5000; ++i) {
        prog.next(ref);
        ASSERT_EQ(ref.vaddr, first[i].vaddr);
        ASSERT_EQ(ref.kind, first[i].kind);
    }
}

TEST(Synthetic, PidStampedOnEveryRef)
{
    SyntheticProgram prog(testProfile(), 7);
    MemRef ref;
    for (int i = 0; i < 1000; ++i) {
        prog.next(ref);
        ASSERT_EQ(ref.pid, 7);
    }
    EXPECT_EQ(prog.pid(), 7);
}

TEST(Synthetic, ReferenceMixMatchesProfile)
{
    ProgramProfile p = testProfile();
    p.dataPerInstr = 0.25;
    p.storeFraction = 0.4;
    SyntheticProgram prog(p, 0);
    std::map<RefKind, int> counts;
    MemRef ref;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        prog.next(ref);
        ++counts[ref.kind];
    }
    double data = counts[RefKind::Load] + counts[RefKind::Store];
    double instr = counts[RefKind::IFetch];
    EXPECT_NEAR(data / instr, 0.25, 0.01);
    EXPECT_NEAR(counts[RefKind::Store] / data, 0.4, 0.02);
}

TEST(Synthetic, AddressesStayInRegions)
{
    ProgramProfile p = testProfile();
    SyntheticProgram prog(p, 0);
    MemRef ref;
    for (int i = 0; i < 100000; ++i) {
        prog.next(ref);
        if (ref.isInstr()) {
            ASSERT_GE(ref.vaddr, SyntheticProgram::codeBase);
            ASSERT_LT(ref.vaddr,
                      SyntheticProgram::codeBase + p.codeBytes);
            ASSERT_EQ(ref.vaddr % 4, 0u) << "unaligned fetch";
        } else {
            bool in_stack =
                ref.vaddr <= SyntheticProgram::stackTop &&
                ref.vaddr > SyntheticProgram::stackTop - p.stackBytes;
            bool in_globals =
                ref.vaddr >= SyntheticProgram::globalBase &&
                ref.vaddr < SyntheticProgram::globalBase + p.globalBytes;
            bool in_heap =
                ref.vaddr >= SyntheticProgram::heapBase &&
                ref.vaddr < SyntheticProgram::heapBase + p.heapBytes;
            ASSERT_TRUE(in_stack || in_globals || in_heap)
                << std::hex << ref.vaddr;
        }
    }
}

TEST(Synthetic, EndlessStream)
{
    SyntheticProgram prog(testProfile(), 0);
    MemRef ref;
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(prog.next(ref));
    EXPECT_EQ(prog.generated(), 1000u);
}

TEST(Roster, HasEighteenPrograms)
{
    // Table 2 lists 18 traces.
    EXPECT_EQ(benchmarkRoster().size(), 18u);
}

TEST(Roster, TotalsMatchPaperTable2)
{
    // The combined workload is ~1.1 G references (§4.2).
    double total = 0;
    for (const auto &profile : benchmarkRoster())
        total += profile.totalMillions;
    EXPECT_NEAR(total, 1100.0, 25.0);
}

TEST(Roster, MixDerivedFromTable2Counts)
{
    for (const auto &profile : benchmarkRoster()) {
        EXPECT_NEAR(profile.dataPerInstr,
                    profile.totalMillions / profile.instrMillions - 1.0,
                    1e-9)
            << profile.name;
        EXPECT_GT(profile.dataPerInstr, 0.0) << profile.name;
        EXPECT_LT(profile.dataPerInstr, 0.6) << profile.name;
    }
}

TEST(Roster, LookupByName)
{
    const auto &gcc = benchmarkProfile("gcc");
    EXPECT_EQ(gcc.name, "gcc");
    EXPECT_NEAR(gcc.instrMillions, 78.8, 1e-9);
    EXPECT_NEAR(gcc.totalMillions, 100.0, 1e-9);
}

TEST(Roster, DistinctSeedsAndPids)
{
    auto workload = makeWorkload();
    ASSERT_EQ(workload.size(), 18u);
    for (std::size_t i = 0; i < workload.size(); ++i)
        EXPECT_EQ(workload[i]->pid(), static_cast<Pid>(i));
    // Streams differ between programs.
    MemRef a, b;
    workload[0]->next(a);
    workload[1]->next(b);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        workload[0]->next(a);
        workload[1]->next(b);
        if (a.vaddr == b.vaddr)
            ++same;
    }
    EXPECT_LT(same, 50);
}

TEST(Roster, SaltDecorrelatesWorkloads)
{
    auto base = makeWorkload(0);
    auto salted = makeWorkload(1);
    MemRef a, b;
    int same = 0;
    for (int i = 0; i < 200; ++i) {
        base[0]->next(a);
        salted[0]->next(b);
        if (a.vaddr == b.vaddr)
            ++same;
    }
    EXPECT_LT(same, 150);
}

} // namespace
} // namespace rampage
