/**
 * @file
 * Unit tests for the named-stats registry and frozen snapshots:
 * counter/formula/histogram registration, dump-time sampling,
 * duplicate-name rejection, snapshot append/find, and text/JSON
 * serialization (round-tripped through the JSON parser).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "stats/registry.hh"
#include "util/error.hh"
#include "util/json.hh"

namespace rampage
{
namespace
{

TEST(StatsRegistry, CounterSamplesLiveFieldAtDumpTime)
{
    std::uint64_t hits = 0;
    StatsRegistry reg;
    reg.addCounter("l1.hits", "hits", &hits);
    EXPECT_TRUE(reg.has("l1.hits"));
    EXPECT_EQ(reg.size(), 1u);

    hits = 42; // mutate after registration: dump must see the update
    StatsSnapshot snap = reg.snapshot();
    const StatsSnapshot::Entry *entry = snap.find("l1.hits");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->kind, StatsSnapshot::Kind::Counter);
    EXPECT_EQ(entry->counter, 42u);

    hits = 100;
    EXPECT_EQ(reg.snapshot().find("l1.hits")->counter, 100u);
}

TEST(StatsRegistry, FormulaEvaluatedAtSnapshotTime)
{
    std::uint64_t misses = 1, refs = 4;
    StatsRegistry reg;
    reg.addFormula("l1.miss_ratio", "misses / refs", [&] {
        return static_cast<double>(misses) / static_cast<double>(refs);
    });
    EXPECT_DOUBLE_EQ(reg.snapshot().find("l1.miss_ratio")->value, 0.25);
    misses = 2;
    EXPECT_DOUBLE_EQ(reg.snapshot().find("l1.miss_ratio")->value, 0.5);
}

TEST(StatsRegistry, HistogramCopiedIntoSnapshot)
{
    Log2Histogram hist;
    StatsRegistry reg;
    reg.addHistogram("dram.tx_bytes", "transaction sizes", &hist);

    hist.add(128);
    hist.add(128);
    hist.add(4096);

    StatsSnapshot snap = reg.snapshot();
    const StatsSnapshot::Entry *entry = snap.find("dram.tx_bytes");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->kind, StatsSnapshot::Kind::Histogram);
    EXPECT_EQ(entry->samples, 3u);
    EXPECT_EQ(entry->sum, 128u + 128 + 4096);

    // The snapshot is frozen: later samples must not leak in.
    hist.add(1);
    EXPECT_EQ(entry->samples, 3u);
}

TEST(StatsRegistry, DuplicateNameThrowsInternalError)
{
    std::uint64_t a = 0;
    StatsRegistry reg;
    reg.addCounter("x", "first", &a);
    EXPECT_THROW(reg.addCounter("x", "again", &a), InternalError);
    EXPECT_THROW(reg.addFormula("x", "again", [] { return 0.0; }),
                 InternalError);
}

TEST(StatsRegistry, EmptyNameThrowsInternalError)
{
    std::uint64_t a = 0;
    StatsRegistry reg;
    EXPECT_THROW(reg.addCounter("", "nameless", &a), InternalError);
}

TEST(StatsRegistry, SnapshotKeepsRegistrationOrder)
{
    std::uint64_t a = 1, b = 2;
    StatsRegistry reg;
    reg.addCounter("z.second", "registered first", &a);
    reg.addCounter("a.first", "registered second", &b);
    StatsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries().size(), 2u);
    EXPECT_EQ(snap.entries()[0].name, "z.second");
    EXPECT_EQ(snap.entries()[1].name, "a.first");
}

TEST(StatsSnapshot, PostHocEntriesAndAppend)
{
    StatsSnapshot snap;
    EXPECT_TRUE(snap.empty());
    snap.addCounter("sim.elapsed_ps", "elapsed", 123);
    snap.addValue("sim.seconds", "seconds", 1.5);

    StatsSnapshot other;
    other.addCounter("sched.stalls", "stalls", 7);
    snap.append(other);

    ASSERT_EQ(snap.entries().size(), 3u);
    EXPECT_EQ(snap.find("sim.elapsed_ps")->counter, 123u);
    EXPECT_DOUBLE_EQ(snap.find("sim.seconds")->value, 1.5);
    EXPECT_EQ(snap.find("sched.stalls")->counter, 7u);
    EXPECT_EQ(snap.find("no.such.stat"), nullptr);
}

TEST(StatsSnapshot, TextDumpNamesEveryStat)
{
    std::uint64_t hits = 9;
    Log2Histogram hist;
    hist.add(64);
    StatsRegistry reg;
    reg.addCounter("l1.hits", "hit count", &hits);
    reg.addFormula("l1.ratio", "a ratio", [] { return 0.75; });
    reg.addHistogram("l1.sizes", "sizes", &hist);

    std::string text = reg.dumpText();
    EXPECT_NE(text.find("l1.hits"), std::string::npos);
    EXPECT_NE(text.find("9"), std::string::npos);
    EXPECT_NE(text.find("l1.ratio"), std::string::npos);
    EXPECT_NE(text.find("l1.sizes"), std::string::npos);
    EXPECT_NE(text.find("hit count"), std::string::npos);
}

TEST(StatsSnapshot, JsonRoundTripsThroughParser)
{
    std::uint64_t hits = 5;
    Log2Histogram hist;
    hist.add(128, 3);
    StatsRegistry reg;
    reg.addCounter("l2.hits", "hits", &hits);
    reg.addFormula("l2.ratio", "ratio", [] { return 0.5; });
    reg.addHistogram("dram.tx", "tx sizes", &hist);

    JsonValue parsed = JsonValue::parse(reg.dumpJson());
    EXPECT_EQ(parsed.at("l2.hits").asInt(), 5);
    EXPECT_DOUBLE_EQ(parsed.at("l2.ratio").asDouble(), 0.5);
    const JsonValue &tx = parsed.at("dram.tx");
    EXPECT_EQ(tx.at("samples").asInt(), 3);
    EXPECT_EQ(tx.at("sum").asInt(), 3 * 128);
}

} // namespace
} // namespace rampage
