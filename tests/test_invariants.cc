/**
 * @file
 * Cross-cutting invariants of the whole simulation apparatus —
 * properties the paper's methodology depends on.
 */

#include <gtest/gtest.h>

#include "core/conventional.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/benchmarks.hh"

namespace rampage
{
namespace
{

SimConfig
smallSim()
{
    SimConfig sim;
    sim.maxRefs = 400'000;
    sim.quantumRefs = 40'000;
    return sim;
}

/**
 * The Table 3 re-pricing rests on this: the *behaviour* (every event
 * count) of a blocking run is identical at every issue rate; only the
 * pricing differs.
 */
TEST(Invariants, BehaviourIsIssueRateIndependent)
{
    auto run = [](std::uint64_t hz) {
        return simulateSystem(baselineConfig(hz, 512), smallSim());
    };
    SimResult slow = run(200'000'000ull);
    SimResult fast = run(4'000'000'000ull);
    EXPECT_EQ(slow.counts.l1iMisses, fast.counts.l1iMisses);
    EXPECT_EQ(slow.counts.l1dMisses, fast.counts.l1dMisses);
    EXPECT_EQ(slow.counts.l2Misses, fast.counts.l2Misses);
    EXPECT_EQ(slow.counts.tlbMisses, fast.counts.tlbMisses);
    EXPECT_EQ(slow.counts.dramReads, fast.counts.dramReads);
    EXPECT_EQ(slow.counts.dramWrites, fast.counts.dramWrites);
    EXPECT_EQ(slow.counts.dramPs, fast.counts.dramPs);
    EXPECT_EQ(slow.counts.l1iCycles, fast.counts.l1iCycles);
    EXPECT_EQ(slow.counts.l2Cycles, fast.counts.l2Cycles);
    // And the cross-pricing matches the native run exactly.
    EXPECT_EQ(totalTimePs(slow.counts, 4'000'000'000ull),
              fast.elapsedPs);
    EXPECT_EQ(totalTimePs(fast.counts, 200'000'000ull),
              slow.elapsedPs);
}

TEST(Invariants, RampageBehaviourIsIssueRateIndependent)
{
    auto run = [](std::uint64_t hz) {
        return simulateSystem(rampageConfig(hz, 1024), smallSim());
    };
    SimResult slow = run(200'000'000ull);
    SimResult fast = run(4'000'000'000ull);
    EXPECT_EQ(slow.counts.l2Misses, fast.counts.l2Misses);
    EXPECT_EQ(slow.counts.tlbMisses, fast.counts.tlbMisses);
    EXPECT_EQ(slow.counts.dramPs, fast.counts.dramPs);
    EXPECT_EQ(totalTimePs(slow.counts, 4'000'000'000ull),
              fast.elapsedPs);
}

/** DRAM time accounting: every picosecond belongs to a transaction. */
TEST(Invariants, DramTimeDecomposesIntoTransactions)
{
    SimResult result =
        simulateSystem(baselineConfig(1'000'000'000ull, 256),
                             smallSim());
    // All conventional DRAM traffic is 256 B blocks: 50 ns + 128
    // beats = 210 ns each.
    Tick per_txn = 210'000;
    EXPECT_EQ(result.counts.dramPs,
              (result.counts.dramReads + result.counts.dramWrites) *
                  per_txn);
}

/** Reference conservation: trace refs + overhead refs = total refs. */
TEST(Invariants, ReferenceAccountingBalances)
{
    SimResult result =
        simulateSystem(rampageConfig(1'000'000'000ull, 512), smallSim());
    EXPECT_EQ(result.counts.refs,
              result.counts.traceRefs + result.counts.overheadRefs);
    EXPECT_EQ(result.counts.traceRefs, smallSim().maxRefs);
    // Fig 4's numerator is a subset of the overhead refs (context
    // switches are excluded).
    EXPECT_LE(result.counts.tlbMissOverheadRefs +
                  result.counts.faultOverheadRefs,
              result.counts.overheadRefs);
}

/** Misses are bounded by accesses at every level. */
TEST(Invariants, MissesBoundedByAccesses)
{
    for (std::uint64_t size : {128ull, 1024ull, 4096ull}) {
        SimResult result = simulateSystem(
            baselineConfig(1'000'000'000ull, size), smallSim());
        const EventCounts &c = result.counts;
        EXPECT_LE(c.l2Misses, c.l2Accesses);
        EXPECT_LE(c.l1iMisses, c.instrFetches);
        EXPECT_LE(c.dramReads, c.l2Misses + c.tlbMisses + 1);
    }
}

/** Determinism end to end: identical runs, identical picoseconds. */
TEST(Invariants, EndToEndDeterminism)
{
    auto run = [] {
        return simulateSystem(
            rampageConfig(4'000'000'000ull, 1024, true),
            [] {
                SimConfig sim;
                sim.maxRefs = 300'000;
                sim.quantumRefs = 30'000;
                sim.switchOnMiss = true;
                return sim;
            }());
    };
    SimResult a = run();
    SimResult b = run();
    EXPECT_EQ(a.elapsedPs, b.elapsedPs);
    EXPECT_EQ(a.stallPs, b.stallPs);
    EXPECT_EQ(a.counts.l2Misses, b.counts.l2Misses);
    EXPECT_EQ(a.sched.missSwitches, b.sched.missSwitches);
}

/**
 * Golden regression: a pinned end-to-end scenario.  If any of these
 * numbers move, the simulated machine changed — recalibrate against
 * the paper (EXPERIMENTS.md) before accepting the new values.
 */
TEST(Invariants, GoldenScenario)
{
    SimConfig sim;
    sim.maxRefs = 100'000;
    sim.quantumRefs = 10'000;
    SimResult result =
        simulateSystem(rampageConfig(1'000'000'000ull, 1024), sim);
    const EventCounts &c = result.counts;

    // Structural facts that must never drift silently.
    EXPECT_EQ(c.traceRefs, 100'000u);
    EXPECT_EQ(c.contextSwitches, 10u);
    EXPECT_EQ(c.dramPs,
              (c.dramReads + c.dramWrites) * 690'000u);
    EXPECT_EQ(result.elapsedPs, totalTimePs(c, 1'000'000'000ull));
    // Behavioural envelope (tight but not byte-exact, so trivially
    // benign generator tweaks surface as a conscious recalibration).
    EXPECT_GT(c.l2Misses, 200u);
    EXPECT_LT(c.l2Misses, 5'000u);
    EXPECT_GT(c.tlbMisses, 300u);
    EXPECT_LT(c.tlbMisses, 20'000u);
}

} // namespace
} // namespace rampage
