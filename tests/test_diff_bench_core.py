#!/usr/bin/env python3
"""Robustness tests for scripts/diff_bench_core.py.

Every malformed input the CI gate can plausibly meet — a truncated
summary missing a baseline bench, a zero current mean, entries without
their required keys, non-JSON bytes — must produce a *named* failure
on stderr and a deliberate exit code, never a Python traceback.  Run
via ctest (registered in tests/CMakeLists.txt) or directly:

    python3 tests/test_diff_bench_core.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.environ.get(
    "DIFF_BENCH_CORE",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 os.pardir, "scripts", "diff_bench_core.py"))


def summary(benches, overall=None):
    """Build a BENCH_core.json-shaped document."""
    means = [m for _, m in benches if isinstance(m, (int, float))]
    doc = {
        "benches": [
            {"bench": name, "mean_refs_per_sec": mean}
            for name, mean in benches
        ],
        "mean_refs_per_sec": overall if overall is not None else (
            sum(means) / len(means) if means else 0),
    }
    return doc


class DiffBenchCoreTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as fh:
            if isinstance(doc, str):
                fh.write(doc)
            else:
                json.dump(doc, fh)
        return path

    def run_diff(self, *argv):
        proc = subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True, text=True)
        combined = proc.stdout + proc.stderr
        self.assertNotIn("Traceback", combined,
                         f"unhandled exception:\n{combined}")
        return proc

    def test_healthy_comparison_passes(self):
        base = self.write("base.json", summary([("a", 100), ("b", 200)]))
        cur = self.write("cur.json", summary([("a", 110), ("b", 190)]))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("ok (no regression", proc.stdout)

    def test_regression_fails_and_names_the_bench(self):
        base = self.write("base.json", summary([("a", 100), ("b", 200)]))
        cur = self.write("cur.json", summary([("a", 40), ("b", 200)]))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("regression", proc.stderr)
        self.assertIn("a", proc.stderr)

    def test_missing_baseline_bench_is_a_named_failure(self):
        # The pre-fix script silently dropped benches missing from the
        # current run (a KeyError risk elsewhere, a silent coverage
        # loss here).  Truncated current summary: bench "b" vanished.
        base = self.write("base.json", summary([("a", 100), ("b", 200)]))
        cur = self.write("cur.json", summary([("a", 100)]))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from the current run", proc.stderr)
        self.assertIn("'b'", proc.stderr)

    def test_zero_current_mean_is_a_named_failure(self):
        base = self.write("base.json", summary([("a", 100)]))
        cur = self.write("cur.json", summary([("a", 0)], overall=100))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("zero or negative", proc.stderr)

    def test_zero_baseline_mean_is_skipped_loudly(self):
        base = self.write("base.json", summary([("a", 0)], overall=100))
        cur = self.write("cur.json", summary([("a", 50)], overall=100))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("no ratio", proc.stdout)

    def test_entry_without_mean_key_is_a_named_failure(self):
        base = self.write("base.json", summary([("a", 100)]))
        cur = self.write("cur.json", {
            "benches": [{"bench": "a"}],
            "mean_refs_per_sec": 100,
        })
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("mean_refs_per_sec", proc.stderr)

    def test_entry_without_bench_name_is_a_named_failure(self):
        base = self.write("base.json", summary([]))
        cur = self.write("cur.json", {
            "benches": [{"mean_refs_per_sec": 5.0}],
            "mean_refs_per_sec": 5.0,
        })
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no 'bench' name", proc.stderr)

    def test_invalid_json_exits_2(self):
        base = self.write("base.json", summary([("a", 100)]))
        cur = self.write("cur.json", "{ not json")
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("not valid JSON", proc.stderr)

    def test_missing_file_exits_2(self):
        base = self.write("base.json", summary([("a", 100)]))
        proc = self.run_diff(base,
                             os.path.join(self.tmp.name, "absent.json"))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_warn_only_reports_but_passes(self):
        base = self.write("base.json", summary([("a", 100), ("b", 200)]))
        cur = self.write("cur.json", summary([("a", 40)]))
        proc = self.run_diff("--warn-only", base, cur)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("missing from the current run", proc.stderr)
        self.assertIn("not failing", proc.stderr)

    def test_new_bench_without_baseline_is_informational(self):
        base = self.write("base.json", summary([("a", 100)]))
        # Pin the overall mean so the new bench's different rate does
        # not itself read as an overall regression.
        cur = self.write("cur.json",
                         summary([("a", 100), ("c", 50)], overall=100))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("new bench, no baseline", proc.stdout)


if __name__ == "__main__":
    unittest.main()
