/**
 * @file
 * Tests for trace file I/O (native binary and Dinero formats).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/file_format.hh"
#include "trace/synthetic.hh"

namespace rampage
{
namespace
{

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/rampage_" + tag +
           ".trace";
}

std::vector<MemRef>
sampleRefs()
{
    return {
        {0x400000, RefKind::IFetch, 1},
        {0x10001234, RefKind::Load, 1},
        {0x7fffe000, RefKind::Store, 2},
        {0xdeadbeef, RefKind::Load, 65535},
    };
}

TEST(TraceFile, NativeRoundTrip)
{
    std::string path = tempPath("native");
    {
        TraceWriter writer(path);
        for (const MemRef &ref : sampleRefs())
            writer.write(ref);
        EXPECT_EQ(writer.count(), 4u);
    }
    FileTraceSource source(path);
    EXPECT_TRUE(source.isNative());
    for (const MemRef &expect : sampleRefs()) {
        MemRef got;
        ASSERT_TRUE(source.next(got));
        EXPECT_EQ(got.vaddr, expect.vaddr);
        EXPECT_EQ(got.kind, expect.kind);
        EXPECT_EQ(got.pid, expect.pid);
    }
    MemRef extra;
    EXPECT_FALSE(source.next(extra));
    std::remove(path.c_str());
}

TEST(TraceFile, DinRoundTrip)
{
    std::string path = tempPath("din");
    {
        TraceWriter writer(path, true);
        for (const MemRef &ref : sampleRefs())
            writer.write(ref);
    }
    FileTraceSource source(path, 9);
    EXPECT_FALSE(source.isNative());
    for (const MemRef &expect : sampleRefs()) {
        MemRef got;
        ASSERT_TRUE(source.next(got));
        EXPECT_EQ(got.vaddr, expect.vaddr);
        EXPECT_EQ(got.kind, expect.kind);
        EXPECT_EQ(got.pid, 9); // din carries no pid
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ResetRewinds)
{
    std::string path = tempPath("rewind");
    {
        TraceWriter writer(path);
        for (const MemRef &ref : sampleRefs())
            writer.write(ref);
    }
    FileTraceSource source(path);
    MemRef first, again;
    ASSERT_TRUE(source.next(first));
    source.reset();
    ASSERT_TRUE(source.next(again));
    EXPECT_EQ(first.vaddr, again.vaddr);
    std::remove(path.c_str());
}

TEST(TraceFile, DinSkipsMalformedLines)
{
    std::string path = tempPath("malformed");
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "# comment line\n2 400\nnot a record\n0 abc\n");
    std::fclose(f);

    FileTraceSource source(path);
    MemRef ref;
    ASSERT_TRUE(source.next(ref));
    EXPECT_EQ(ref.vaddr, 0x400u);
    EXPECT_EQ(ref.kind, RefKind::IFetch);
    ASSERT_TRUE(source.next(ref));
    EXPECT_EQ(ref.vaddr, 0xabcu);
    EXPECT_EQ(ref.kind, RefKind::Load);
    EXPECT_FALSE(source.next(ref));
    std::remove(path.c_str());
}

TEST(TraceFile, ReadWholeFileHelper)
{
    std::string path = tempPath("whole");
    {
        TraceWriter writer(path);
        for (const MemRef &ref : sampleRefs())
            writer.write(ref);
    }
    auto refs = readTraceFile(path);
    EXPECT_EQ(refs.size(), 4u);
    EXPECT_EQ(refs[3].pid, 65535);
    std::remove(path.c_str());
}

TEST(TraceFile, SyntheticCaptureReplayEquivalence)
{
    // Capturing a synthetic stream to disk and replaying it yields
    // the identical reference sequence — the mechanism by which real
    // Pin/Valgrind traces can replace the synthetic workload.
    ProgramProfile profile;
    profile.name = "cap";
    profile.seed = 55;
    std::string path = tempPath("capture");
    {
        SyntheticProgram prog(profile, 3);
        TraceWriter writer(path);
        MemRef ref;
        for (int i = 0; i < 2000; ++i) {
            prog.next(ref);
            writer.write(ref);
        }
    }
    SyntheticProgram prog(profile, 3);
    FileTraceSource replay(path);
    MemRef live, replayed;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(prog.next(live));
        ASSERT_TRUE(replay.next(replayed));
        ASSERT_EQ(live.vaddr, replayed.vaddr);
        ASSERT_EQ(live.kind, replayed.kind);
        ASSERT_EQ(live.pid, replayed.pid);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace rampage
