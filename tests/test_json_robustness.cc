/**
 * @file
 * Adversarial-input tests for the JSON codec: the corpus repro files
 * the fuzzer feeds back in are an attack surface, so parsing must
 * fail with ConfigError — never a crash or stack overflow — on
 * hostile documents.  The nesting-depth tests pin the parser's
 * 128-level container limit exactly at the boundary.
 */

#include <string>

#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/json.hh"

namespace rampage
{
namespace
{

/** `depth` nested arrays around a scalar: [[[...0...]]]. */
std::string
nestedArrays(unsigned depth)
{
    std::string out;
    out.append(depth, '[');
    out += '0';
    out.append(depth, ']');
    return out;
}

/** `depth` nested single-key objects: {"k":{"k":...null...}}. */
std::string
nestedObjects(unsigned depth)
{
    std::string out;
    for (unsigned i = 0; i < depth; ++i)
        out += "{\"k\":";
    out += "null";
    out.append(depth, '}');
    return out;
}

TEST(JsonDepth, AtTheLimitParses)
{
    JsonValue doc = JsonValue::parse(nestedArrays(128));
    const JsonValue *inner = &doc;
    for (unsigned i = 0; i < 128; ++i) {
        ASSERT_TRUE(inner->isArray());
        inner = &inner->at(0);
    }
    EXPECT_EQ(inner->asInt(), 0);

    EXPECT_NO_THROW(JsonValue::parse(nestedObjects(128)));
    // Mixed containers share the one depth budget.
    EXPECT_NO_THROW(
        JsonValue::parse("[" + nestedObjects(127) + "]"));
}

TEST(JsonDepth, OnePastTheLimitThrows)
{
    EXPECT_THROW(JsonValue::parse(nestedArrays(129)), ConfigError);
    EXPECT_THROW(JsonValue::parse(nestedObjects(129)), ConfigError);
    EXPECT_THROW(JsonValue::parse("[" + nestedObjects(128) + "]"),
                 ConfigError);
}

TEST(JsonDepth, PathologicalDepthRejectedNotCrashed)
{
    // Without the limit each '[' is one C++ stack frame: 300k open
    // brackets would overrun the stack long before the closing side
    // was even reached.
    EXPECT_THROW(JsonValue::parse(std::string(300'000, '[')),
                 ConfigError);
    EXPECT_THROW(JsonValue::parse(nestedArrays(300'000)), ConfigError);
}

TEST(JsonDepth, ErrorNamesTheLimit)
{
    try {
        JsonValue::parse(nestedArrays(200));
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find("nesting"),
                  std::string::npos)
            << err.what();
    }
}

} // namespace
} // namespace rampage
