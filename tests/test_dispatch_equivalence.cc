/**
 * @file
 * Equivalence proofs for the devirtualized hot path.
 *
 * The statically-dispatched, batched inner loop (core/access_engine.hh
 * plus the Simulator's bulk loops) is a pure performance change: runs
 * through it must be *bit-identical* — same elapsed time, same full
 * statistics snapshot — to runs through the dynamically-dispatched
 * per-reference path (SimConfig::genericDispatch).  Likewise the
 * one-entry last-translation cache must never change a single
 * counter, and TraceSource::fill() must reproduce exactly the
 * reference sequence repeated next() calls produce, for every trace
 * family.  Finally, the cache's audit invariant (tlb.trans_cache)
 * must actually fire on a stale cache, proven via fault injection.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/audit.hh"
#include "core/factory.hh"
#include "core/fault_injection.hh"
#include "core/hierarchy.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/benchmarks.hh"
#include "trace/file_format.hh"
#include "trace/interleaver.hh"
#include "trace/synthetic.hh"
#include "util/error.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

/** One (refs, quantum) scale for the equivalence sweeps. */
struct Scale
{
    std::uint64_t refs;
    std::uint64_t quantum;
};

/** Two scales: quantum-aligned refs and a ragged final slice. */
const Scale scales[] = {{20'000, 2'000}, {60'000, 7'000}};

SimResult
runSystem(const HierarchyConfig &cfg, const Scale &scale, bool generic)
{
    SimConfig sim;
    sim.maxRefs = scale.refs;
    sim.quantumRefs = scale.quantum;
    sim.genericDispatch = generic;
    return simulateSystem(cfg, sim);
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.elapsedPs, b.elapsedPs);
    EXPECT_EQ(a.stallPs, b.stallPs);
    EXPECT_EQ(a.systemName, b.systemName);
    // The full statistics snapshot — every counter, every formula,
    // registered under the same names in the same order.
    EXPECT_EQ(a.stats.toJson().dump(), b.stats.toJson().dump());
}

class DispatchEquivalence : public ::testing::TestWithParam<Scale>
{
};

TEST_P(DispatchEquivalence, BaselineBitIdentical)
{
    ConventionalConfig cfg = baselineConfig(oneGhz, 128);
    expectIdentical(runSystem(cfg, GetParam(), false),
                    runSystem(cfg, GetParam(), true));
}

TEST_P(DispatchEquivalence, TwoWayBitIdentical)
{
    ConventionalConfig cfg = twoWayConfig(oneGhz, 128);
    expectIdentical(runSystem(cfg, GetParam(), false),
                    runSystem(cfg, GetParam(), true));
}

TEST_P(DispatchEquivalence, RampageBitIdentical)
{
    RampageConfig cfg = rampageConfig(oneGhz, 1024);
    expectIdentical(runSystem(cfg, GetParam(), false),
                    runSystem(cfg, GetParam(), true));
}

TEST_P(DispatchEquivalence, RampageSwitchOnMissBitIdentical)
{
    // The paged config's switchOnMiss policy selects the
    // timing-coupled scheduler loop (runSwitchOnMiss).
    RampageConfig cfg = rampageConfig(oneGhz, 1024, true);
    expectIdentical(runSystem(cfg, GetParam(), false),
                    runSystem(cfg, GetParam(), true));
}

INSTANTIATE_TEST_SUITE_P(Scales, DispatchEquivalence,
                         ::testing::ValuesIn(scales));

// ------------------------------------------------- translation cache

SimResult
runWithCache(const HierarchyConfig &cfg, bool cache_on,
             bool switch_on_miss = false)
{
    auto hier = makeHierarchy(cfg);
    hier->setTranslationCacheEnabled(cache_on);
    SimConfig sim;
    sim.maxRefs = 60'000;
    sim.quantumRefs = 7'000;
    sim.switchOnMiss = switch_on_miss;
    Simulator driver(*hier, makeWorkload(), sim);
    return driver.run();
}

TEST(TranslationCache, RampageRunsBitIdenticalWithCacheOff)
{
    expectIdentical(runWithCache(rampageConfig(oneGhz, 1024), true),
                    runWithCache(rampageConfig(oneGhz, 1024), false));
}

TEST(TranslationCache, SwitchOnMissRunsBitIdenticalWithCacheOff)
{
    RampageConfig cfg = rampageConfig(oneGhz, 1024, true);
    expectIdentical(runWithCache(cfg, true, true),
                    runWithCache(cfg, false, true));
}

TEST(TranslationCache, ConventionalRunsBitIdenticalWithCacheOff)
{
    ConventionalConfig cfg = baselineConfig(oneGhz, 128);
    expectIdentical(runWithCache(cfg, true),
                    runWithCache(cfg, false));
}

TEST(TranslationCache, ParanoidAuditedRunStaysClean)
{
    // Paranoid audits check the tlb.trans_cache invariant after every
    // miss that reached the L2/SRAM level — across page replacements,
    // context switches and TLB refills.  A missed invalidation seam
    // anywhere in the hierarchy would throw AuditError here.
    SimConfig sim;
    sim.maxRefs = 40'000;
    sim.quantumRefs = 5'000;
    sim.auditLevel = AuditLevel::Paranoid;
    EXPECT_NO_THROW(simulateSystem(rampageConfig(oneGhz, 1024), sim));
    EXPECT_NO_THROW(
        simulateSystem(rampageConfig(oneGhz, 1024, true), sim));
}

TEST(TranslationCache, StaleCacheIsCaughtByTheAudit)
{
    auto hier = makeHierarchy(rampageConfig(oneGhz, 1024));
    SimConfig sim;
    sim.maxRefs = 40'000;
    sim.quantumRefs = 5'000;
    Simulator(*hier, makeWorkload(), sim).run();

    // Positive control: the warmed hierarchy audits clean.
    Auditor control(AuditLevel::Boundaries);
    EXPECT_NO_THROW(control.auditHierarchy(*hier, "control"));

    // Inject the desynchronization bug: a live cache entry's frame
    // is skewed away from its backing TLB slot (mutating the TLB
    // itself would advance its generation and retire the cache).
    FaultInjector injector(parseFaultPlan("trans-cache-stale"));
    ASSERT_TRUE(injector.apply(*hier))
        << "warm run left no cached translation to corrupt";

    Auditor auditor(AuditLevel::Boundaries);
    try {
        auditor.auditHierarchy(*hier, "stale translation cache");
        FAIL() << "stale translation cache passed the audit";
    } catch (const AuditError &err) {
        EXPECT_EQ(err.firstInvariant(), "tlb.trans_cache");
    }
}

// ------------------------------------------------ TraceSource::fill

/** Collect `n` refs via repeated next(); the reference sequence. */
std::vector<MemRef>
byNext(TraceSource &src, std::size_t n)
{
    std::vector<MemRef> refs;
    MemRef ref;
    while (refs.size() < n && src.next(ref))
        refs.push_back(ref);
    return refs;
}

/** Collect up to `n` refs via fill() in `chunk`-sized requests. */
std::vector<MemRef>
byFill(TraceSource &src, std::size_t n, std::size_t chunk)
{
    std::vector<MemRef> refs;
    std::vector<MemRef> buf(chunk);
    while (refs.size() < n) {
        std::size_t want = std::min(chunk, n - refs.size());
        std::size_t got = src.fill(buf.data(), want);
        refs.insert(refs.end(), buf.begin(), buf.begin() + got);
        if (got < want)
            break; // end of stream
    }
    return refs;
}

void
expectSameRefs(const std::vector<MemRef> &a,
               const std::vector<MemRef> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].vaddr, b[i].vaddr) << "ref " << i;
        ASSERT_EQ(a[i].kind, b[i].kind) << "ref " << i;
        ASSERT_EQ(a[i].pid, b[i].pid) << "ref " << i;
    }
}

const std::size_t fillChunks[] = {1, 2, 3, 7, 64, 1000};

TEST(TraceFill, SyntheticMatchesNext)
{
    ProgramProfile profile;
    profile.name = "fill-test";
    profile.seed = 42;
    for (std::size_t chunk : fillChunks) {
        SyntheticProgram via_next(profile, 3);
        SyntheticProgram via_fill(profile, 3);
        expectSameRefs(byNext(via_next, 5000),
                       byFill(via_fill, 5000, chunk));
    }
}

std::vector<std::unique_ptr<TraceSource>>
threePrograms()
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (Pid pid = 0; pid < 3; ++pid) {
        ProgramProfile profile;
        profile.name = "prog" + std::to_string(pid);
        profile.seed = 100 + pid;
        sources.push_back(
            std::make_unique<SyntheticProgram>(profile, pid));
    }
    return sources;
}

TEST(TraceFill, InterleaverMatchesNext)
{
    // Quantum 17 deliberately misaligns with every chunk size, so
    // fills regularly span slice boundaries mid-request.
    for (std::size_t chunk : fillChunks) {
        Interleaver via_next(threePrograms(), 17);
        Interleaver via_fill(threePrograms(), 17);
        expectSameRefs(byNext(via_next, 4000),
                       byFill(via_fill, 4000, chunk));
        EXPECT_EQ(via_next.switchCount(), via_fill.switchCount());
    }
}

TEST(TraceFill, InterleaverSingleRefFillTracksSwitchFlag)
{
    // With chunk size 1, fill() is next() exactly — including the
    // switched-process flag the switch-on-miss driver reads.
    Interleaver via_next(threePrograms(), 17);
    Interleaver via_fill(threePrograms(), 17);
    MemRef a, b;
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(via_next.next(a));
        ASSERT_EQ(via_fill.fill(&b, 1), 1u);
        ASSERT_EQ(a.vaddr, b.vaddr);
        ASSERT_EQ(via_next.switchedProcess(),
                  via_fill.switchedProcess())
            << "ref " << i;
    }
}

TEST(TraceFill, FileSourceMatchesNextAndStopsAtEof)
{
    for (bool din : {false, true}) {
        std::string path = std::string(::testing::TempDir()) +
                           "/rampage_fill_" + (din ? "din" : "native") +
                           ".trace";
        {
            TraceWriter writer(path, din);
            ProgramProfile profile;
            profile.name = "file-fill";
            profile.seed = 7;
            SyntheticProgram gen(profile, 5);
            MemRef ref;
            for (int i = 0; i < 1000; ++i) {
                gen.next(ref);
                writer.write(ref);
            }
        }
        for (std::size_t chunk : fillChunks) {
            FileTraceSource via_next(path, 5);
            FileTraceSource via_fill(path, 5);
            // Ask for more than the file holds: both paths must stop
            // short at EOF with the identical partial sequence.
            std::vector<MemRef> a = byNext(via_next, 1500);
            std::vector<MemRef> b = byFill(via_fill, 1500, chunk);
            EXPECT_EQ(a.size(), 1000u);
            expectSameRefs(a, b);
        }
        std::remove(path.c_str());
    }
}

/** A finite source with no fill() override (the default path). */
class FiniteSource : public TraceSource
{
  public:
    explicit FiniteSource(std::uint64_t count) : total(count) {}

    bool
    next(MemRef &ref) override
    {
        if (emitted >= total)
            return false;
        ref.vaddr = emitted * 64;
        ref.kind = emitted % 3 ? RefKind::Load : RefKind::IFetch;
        ref.pid = 1;
        ++emitted;
        return true;
    }

    void reset() override { emitted = 0; }
    std::string name() const override { return "finite"; }
    Pid pid() const override { return 1; }

  private:
    std::uint64_t total;
    std::uint64_t emitted = 0;
};

TEST(TraceFill, DefaultImplementationMatchesNext)
{
    for (std::size_t chunk : fillChunks) {
        FiniteSource via_next(500);
        FiniteSource via_fill(500);
        std::vector<MemRef> a = byNext(via_next, 800);
        std::vector<MemRef> b = byFill(via_fill, 800, chunk);
        EXPECT_EQ(a.size(), 500u);
        expectSameRefs(a, b);
    }
}

} // namespace
} // namespace rampage
