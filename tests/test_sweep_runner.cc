/**
 * @file
 * Fault-tolerant sweep engine tests: poisoned points fail in
 * isolation with a categorized outcome, completed points checkpoint
 * to the manifest, and a re-run resumes without re-simulating them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/audit.hh"
#include "core/sweep.hh"
#include "trace/corrupter.hh"
#include "trace/file_format.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{
namespace
{

class SweepRunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        manifest = std::string(::testing::TempDir()) +
                   "/rampage_sweep.checkpoint";
        std::remove(manifest.c_str());
    }

    void TearDown() override
    {
        setQuiet(false);
        std::remove(manifest.c_str());
    }

    static SimResult fakeResult(Tick elapsed)
    {
        SimResult result;
        result.elapsedPs = elapsed;
        return result;
    }

    /** A small but real simulation (the §4.4 baseline, tiny scale). */
    static SimResult tinyBaseline(std::uint64_t l2_block)
    {
        SimConfig sim;
        sim.maxRefs = 2'000;
        sim.quantumRefs = 500;
        return simulateSystem(
            baselineConfig(200'000'000ull, l2_block), sim);
    }

    /** The §4.7 2-way system at the same tiny scale. */
    static SimResult tinyTwoWay(std::uint64_t l2_block)
    {
        SimConfig sim;
        sim.maxRefs = 2'000;
        sim.quantumRefs = 500;
        return simulateSystem(
            twoWayConfig(200'000'000ull, l2_block), sim);
    }

    /** The §4.5 RAMpage system at the same tiny scale. */
    static SimResult tinyRampage(std::uint64_t page_bytes)
    {
        SimConfig sim;
        sim.maxRefs = 2'000;
        sim.quantumRefs = 500;
        return simulateSystem(
            rampageConfig(200'000'000ull, page_bytes), sim);
    }

    /**
     * The determinism campaign: eight points spanning all three
     * system families plus a poisoned configuration and a synthetic
     * internal bug, so the jobs=1 vs jobs=4 comparison covers Ok and
     * both failure statuses.
     */
    static void addDeterminismPoints(SweepRunner &runner)
    {
        for (std::uint64_t block : {128u, 256u, 512u, 1024u})
            runner.add("baseline/" + std::to_string(block),
                       [block] { return tinyBaseline(block); });
        runner.add("2way/512", [] { return tinyTwoWay(512); });
        runner.add("rampage/1024", [] { return tinyRampage(1024); });
        runner.add("poison/config",
                   [] { return tinyBaseline(16); }); // below the L1 block
        runner.add("poison/internal", []() -> SimResult {
            throw InternalError("synthetic bug");
        });
    }

    /**
     * The manifest's lines as an order-independent set with the
     * wall-clock token blanked: wall time is the one legitimately
     * nondeterministic field, everything else must match exactly.
     */
    static std::vector<std::string> manifestLineSet(
        const std::string &path)
    {
        std::vector<std::string> lines;
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            std::size_t wall = line.find("wall=");
            if (wall != std::string::npos) {
                std::size_t end = line.find(' ', wall);
                if (end == std::string::npos)
                    end = line.size();
                line.erase(wall, end - wall);
            }
            lines.push_back(line);
        }
        std::sort(lines.begin(), lines.end());
        return lines;
    }

    std::string manifest;
};

TEST_F(SweepRunnerTest, PoisonedPointsYieldPartialResults)
{
    SweepRunner runner;
    runner.add("good/128", [] { return tinyBaseline(128); });
    runner.add("poison/config",
               [] { return tinyBaseline(16); }); // below the L1 block
    runner.add("good/1024", [] { return tinyBaseline(1024); });
    runner.add("poison/internal", []() -> SimResult {
        throw InternalError("synthetic bug");
    });

    SweepReport report = runner.run();
    ASSERT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(report.okCount(), 2u);
    EXPECT_EQ(report.failedCount(), 2u);
    EXPECT_FALSE(report.allOk());

    EXPECT_EQ(report.outcomes[0].status, PointStatus::Ok);
    EXPECT_TRUE(report.outcomes[0].haveResult);
    EXPECT_GT(report.outcomes[0].result.elapsedPs, 0u);

    EXPECT_EQ(report.outcomes[1].status, PointStatus::Failed);
    EXPECT_EQ(report.outcomes[1].errorCategory, ErrorCategory::Config);
    EXPECT_FALSE(report.outcomes[1].error.empty());

    EXPECT_EQ(report.outcomes[2].status, PointStatus::Ok);

    EXPECT_EQ(report.outcomes[3].status, PointStatus::Failed);
    EXPECT_EQ(report.outcomes[3].errorCategory,
              ErrorCategory::Internal);
}

TEST_F(SweepRunnerTest, DuplicatePointIdsAreRejected)
{
    SweepRunner runner;
    runner.add("p", [] { return fakeResult(1); });
    EXPECT_THROW(runner.add("p", [] { return fakeResult(2); }),
                 ConfigError);
}

TEST_F(SweepRunnerTest, CheckpointResumeSkipsCompletedPoints)
{
    std::atomic<int> executions{0};
    bool poisoned = true;
    auto build = [&](SweepRunner &runner) {
        runner.add("a", [&] {
            ++executions;
            return fakeResult(10);
        });
        runner.add("b", [&]() -> SimResult {
            ++executions;
            if (poisoned)
                throw TraceError("injected trace damage");
            return fakeResult(20);
        });
        runner.add("c", [&] {
            ++executions;
            return fakeResult(30);
        });
    };

    SweepRunner first({manifest});
    build(first);
    SweepReport run1 = first.run();
    EXPECT_EQ(run1.okCount(), 2u);
    EXPECT_EQ(run1.failedCount(), 1u);
    EXPECT_EQ(run1.outcomes[1].errorCategory, ErrorCategory::Trace);
    EXPECT_EQ(executions, 3);

    // Second campaign: the fault is fixed; only 'b' re-executes.
    poisoned = false;
    SweepRunner second({manifest});
    build(second);
    SweepReport run2 = second.run();
    EXPECT_EQ(executions, 4);
    EXPECT_EQ(run2.skippedCount(), 2u);
    EXPECT_EQ(run2.okCount(), 1u);
    EXPECT_TRUE(run2.allOk());
    EXPECT_EQ(run2.outcomes[0].status, PointStatus::Skipped);
    EXPECT_EQ(run2.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(run2.outcomes[2].status, PointStatus::Skipped);
}

TEST_F(SweepRunnerTest, DamagedManifestLinesAreIgnored)
{
    SweepRunner first({manifest});
    std::atomic<int> executions{0};
    first.add("keep", [&] {
        ++executions;
        return fakeResult(5);
    });
    first.run();

    // Simulate a torn write: append garbage to the manifest.
    std::FILE *file = std::fopen(manifest.c_str(), "a");
    ASSERT_NE(file, nullptr);
    std::fprintf(file, "ok wall=0.5 elapsed_ps=");
    std::fclose(file);

    SweepRunner second({manifest});
    second.add("keep", [&] {
        ++executions;
        return fakeResult(5);
    });
    SweepReport report = second.run();
    EXPECT_EQ(report.skippedCount(), 1u);
    EXPECT_EQ(executions, 1);
}

TEST_F(SweepRunnerTest, WatchdogAbortsRunawayPointCleanly)
{
    SweepRunner runner;
    runner.add("runaway", [] {
        SimConfig sim;
        sim.maxRefs = 50'000;
        sim.quantumRefs = 500;
        sim.watchdogRefBudget = 1'000; // absurdly tight on purpose
        return simulateSystem(baselineConfig(200'000'000ull, 1024),
                                    sim);
    });
    runner.add("healthy", [] { return tinyBaseline(1024); });

    SweepReport report = runner.run();
    EXPECT_EQ(report.failedCount(), 1u);
    EXPECT_EQ(report.okCount(), 1u);
    EXPECT_EQ(report.outcomes[0].errorCategory, ErrorCategory::Internal);
    EXPECT_NE(report.outcomes[0].error.find("watchdog"),
              std::string::npos);
}

TEST_F(SweepRunnerTest, OkPointsReportThroughput)
{
    SweepRunner runner;
    runner.add("real", [] { return tinyBaseline(1024); });
    SweepReport report = runner.run();
    ASSERT_EQ(report.okCount(), 1u);
    EXPECT_GE(report.outcomes[0].wallSeconds, 0.0);
    // 2000 refs over nonzero wall time gives a positive rate.
    EXPECT_GT(report.outcomes[0].refsPerSecond, 0.0);
    EXPECT_TRUE(report.outcomes[0].debugTail.empty());
}

TEST_F(SweepRunnerTest, FailedPointCapturesDebugRingTail)
{
    clearDebugRing();
    SweepRunner runner;
    runner.add("noisy-failure", []() -> SimResult {
        // Stand-in for RAMPAGE_DPRINTF events emitted while the point
        // runs (the macro is compiled out in Release, the ring isn't).
        debugRecord(DebugChannel::Pager, "fault vpn=0xabc");
        debugRecord(DebugChannel::Dram, "read 4096 bytes");
        throw InternalError("synthetic post-mortem bug");
    });
    runner.add("clean-failure", []() -> SimResult {
        throw InternalError("no events this time");
    });

    SweepReport report = runner.run();
    ASSERT_EQ(report.failedCount(), 2u);

    const PointOutcome &noisy = report.outcomes[0];
    ASSERT_EQ(noisy.debugTail.size(), 2u);
    EXPECT_EQ(noisy.debugTail[0], "pager: fault vpn=0xabc");
    EXPECT_EQ(noisy.debugTail[1], "dram: read 4096 bytes");

    // Each point starts with a clean ring: the second failure must not
    // inherit the first point's events.
    EXPECT_TRUE(report.outcomes[1].debugTail.empty());
}

TEST_F(SweepRunnerTest, HeartbeatOptionIsHarmless)
{
    SweepRunner::Options opts;
    opts.heartbeatSeconds = 0.000001; // fire at every point boundary
    SweepRunner runner(opts);
    runner.add("a", [] { return fakeResult(1); });
    runner.add("b", [] { return fakeResult(2); });
    SweepReport report = runner.run();
    EXPECT_EQ(report.okCount(), 2u);
}

/**
 * The acceptance scenario end to end: a campaign holding an injected
 * corrupt-trace point and an invalid-config point among healthy ones
 * completes with partial results, and a second run resumes from the
 * manifest without re-simulating the completed points.
 */
TEST_F(SweepRunnerTest, CorruptTraceAndBadConfigCampaignResumes)
{
    std::string trace = std::string(::testing::TempDir()) +
                        "/rampage_sweep_campaign.trace";
    {
        TraceWriter writer(trace);
        MemRef ref;
        ref.pid = 1;
        for (int i = 0; i < 64; ++i) {
            ref.vaddr = 0x1000 + 32 * i;
            writer.write(ref);
        }
    }
    truncateTraceFile(trace, 8 + 64 * 11 - 5); // injected damage

    std::atomic<int> simulated{0};
    auto build = [&](SweepRunner &runner) {
        runner.add("baseline/128", [&] {
            ++simulated;
            return tinyBaseline(128);
        });
        runner.add("trace/corrupt", [&]() -> SimResult {
            TraceReadOptions strict;
            strict.strict = true;
            readTraceFile(trace, 1, strict);
            return SimResult{};
        });
        runner.add("config/invalid", [&] {
            ++simulated;
            return tinyBaseline(16);
        });
        runner.add("baseline/1024", [&] {
            ++simulated;
            return tinyBaseline(1024);
        });
    };

    SweepRunner first({manifest});
    build(first);
    SweepReport run1 = first.run();
    ASSERT_EQ(run1.outcomes.size(), 4u);
    EXPECT_EQ(run1.okCount(), 2u);
    EXPECT_EQ(run1.failedCount(), 2u);
    EXPECT_EQ(run1.outcomes[1].errorCategory, ErrorCategory::Trace);
    EXPECT_EQ(run1.outcomes[2].errorCategory, ErrorCategory::Config);
    EXPECT_TRUE(run1.outcomes[0].haveResult);
    EXPECT_TRUE(run1.outcomes[3].haveResult);
    EXPECT_EQ(simulated, 3); // two healthy + the invalid-config attempt

    SweepRunner second({manifest});
    build(second);
    SweepReport run2 = second.run();
    EXPECT_EQ(run2.skippedCount(), 2u); // healthy points not re-simulated
    EXPECT_EQ(run2.failedCount(), 2u);  // still-broken points re-tried
    EXPECT_EQ(simulated, 4); // only the invalid-config attempt repeats

    std::remove(trace.c_str());
}

// A resumed campaign appends to a manifest that already has content.
// The header decision must look at the file's real size, not the
// append-stream's initial position (implementation-defined per C11
// 7.21.5.3), or every resume writes a second header line.
TEST_F(SweepRunnerTest, ManifestHeaderWrittenOnceAcrossResumes)
{
    {
        SweepRunner first({manifest});
        first.add("a", [] { return fakeResult(1); });
        first.run();
    }
    {
        SweepRunner second({manifest});
        second.add("a", [] { return fakeResult(1); });
        second.add("b", [] { return fakeResult(2); });
        SweepReport report = second.run();
        EXPECT_EQ(report.skippedCount(), 1u);
        EXPECT_EQ(report.okCount(), 1u);
    }

    std::ifstream in(manifest);
    ASSERT_TRUE(in.is_open());
    int headers = 0;
    int ok_lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("# rampage-sweep-checkpoint", 0) == 0)
            ++headers;
        if (line.rfind("ok ", 0) == 0)
            ++ok_lines;
    }
    EXPECT_EQ(headers, 1);
    EXPECT_EQ(ok_lines, 2);
}

// The heartbeat is driven by the reporter's timed wait, so it fires
// while one long point is still mid-simulation, and it reports points
// simulated this run separately from checkpoint skips instead of
// folding the skips into apparent progress.
TEST_F(SweepRunnerTest, HeartbeatFiresDuringLongPointAndSplitsSkips)
{
    {
        SweepRunner first({manifest});
        first.add("fast", [] { return fakeResult(1); });
        first.run();
    }

    SweepRunner::Options opts;
    opts.checkpointPath = manifest;
    opts.heartbeatSeconds = 0.05;
    SweepRunner second(opts);
    second.add("fast", [] { return fakeResult(1); });
    second.add("slow", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return fakeResult(2);
    });

    setQuiet(false);
    ::testing::internal::CaptureStderr();
    SweepReport report = second.run();
    std::string err = ::testing::internal::GetCapturedStderr();
    setQuiet(true);

    EXPECT_EQ(report.skippedCount(), 1u);
    EXPECT_EQ(report.okCount(), 1u);
    // Fired before 'slow' finished: nothing simulated yet, one skip.
    EXPECT_NE(err.find("heartbeat 0/1 points simulated this run "
                       "(1 skipped)"),
              std::string::npos)
        << err;
}

// The tentpole guarantee: a parallel campaign is observably identical
// to a serial one — same per-point statuses, errors, simulated times
// and stats snapshots, and the same checkpoint-manifest line set.
TEST_F(SweepRunnerTest, ParallelRunMatchesSerialRun)
{
    std::string manifest4 = manifest + ".jobs4";
    std::remove(manifest4.c_str());

    SweepRunner::Options serial_opts;
    serial_opts.checkpointPath = manifest;
    serial_opts.jobs = 1;
    SweepRunner serial(serial_opts);
    addDeterminismPoints(serial);
    SweepReport one = serial.run();

    SweepRunner::Options parallel_opts;
    parallel_opts.checkpointPath = manifest4;
    parallel_opts.jobs = 4;
    SweepRunner parallel(parallel_opts);
    addDeterminismPoints(parallel);
    SweepReport four = parallel.run();

    ASSERT_EQ(one.outcomes.size(), 8u);
    ASSERT_EQ(four.outcomes.size(), 8u);
    EXPECT_EQ(one.okCount(), 6u);
    EXPECT_EQ(one.failedCount(), 2u);
    for (std::size_t i = 0; i < one.outcomes.size(); ++i) {
        const PointOutcome &a = one.outcomes[i];
        const PointOutcome &b = four.outcomes[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.status, b.status) << a.id;
        EXPECT_EQ(a.errorCategory, b.errorCategory) << a.id;
        EXPECT_EQ(a.error, b.error) << a.id;
        EXPECT_EQ(a.haveResult, b.haveResult) << a.id;
        EXPECT_EQ(a.result.elapsedPs, b.result.elapsedPs) << a.id;
        EXPECT_EQ(a.result.stats.toText(), b.result.stats.toText())
            << a.id;
    }
    EXPECT_EQ(manifestLineSet(manifest), manifestLineSet(manifest4));

    std::remove(manifest4.c_str());
}

// Same determinism bar with model-integrity audits armed and a fault
// injected: the parallel run must reject the same point for the same
// violated invariant the serial run names.
TEST_F(SweepRunnerTest, ParallelAuditedFaultMatchesSerial)
{
    auto build = [](SweepRunner &runner) {
        runner.add("faulty/leak-frame", [] {
            RampageConfig cfg = rampageConfig(1'000'000'000ull, 1024);
            cfg.pager.baseSramBytes = 256 * kib;
            SimConfig sim;
            sim.maxRefs = 60'000;
            sim.quantumRefs = 10'000;
            sim.auditLevel = AuditLevel::Boundaries;
            sim.faultPlan = "leak-frame";
            return simulateSystem(cfg, sim);
        });
        runner.add("clean/baseline", [] { return tinyBaseline(1024); });
        runner.add("clean/rampage", [] { return tinyRampage(1024); });
    };

    auto runWith = [&](unsigned jobs) {
        SweepRunner::Options opts;
        opts.jobs = jobs;
        SweepRunner runner(opts);
        build(runner);
        return runner.run();
    };
    SweepReport one = runWith(1);
    SweepReport four = runWith(4);

    ASSERT_EQ(one.outcomes.size(), 3u);
    ASSERT_EQ(four.outcomes.size(), 3u);
    EXPECT_EQ(one.outcomes[0].status, PointStatus::AuditFailed);
    EXPECT_EQ(four.outcomes[0].status, PointStatus::AuditFailed);
    EXPECT_EQ(one.outcomes[0].auditInvariant, "pager.leak");
    EXPECT_EQ(four.outcomes[0].auditInvariant,
              one.outcomes[0].auditInvariant);
    EXPECT_EQ(four.outcomes[0].error, one.outcomes[0].error);
    for (std::size_t i = 1; i < 3; ++i) {
        EXPECT_EQ(one.outcomes[i].status, PointStatus::Ok);
        EXPECT_EQ(four.outcomes[i].status, PointStatus::Ok);
        EXPECT_EQ(four.outcomes[i].result.elapsedPs,
                  one.outcomes[i].result.elapsedPs);
    }
}

// Options::jobs = 0 defers to resolveJobs() so the --jobs flag and
// RAMPAGE_JOBS reach embedders that never touch the option, and a
// pool wider than the campaign is harmless.
TEST_F(SweepRunnerTest, MoreWorkersThanPointsIsHarmless)
{
    SweepRunner::Options opts;
    opts.jobs = 32;
    SweepRunner runner(opts);
    runner.add("only", [] { return fakeResult(7); });
    SweepReport report = runner.run();
    ASSERT_EQ(report.okCount(), 1u);
    EXPECT_EQ(report.outcomes[0].id, "only");
}

} // namespace
} // namespace rampage
