/**
 * @file
 * Fault-tolerant sweep engine tests: poisoned points fail in
 * isolation with a categorized outcome, completed points checkpoint
 * to the manifest, and a re-run resumes without re-simulating them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "core/audit.hh"
#include "core/fault_injection.hh"
#include "core/sweep.hh"
#include "trace/corrupter.hh"
#include "trace/file_format.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{
namespace
{

class SweepRunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        // Per-test path: ctest runs fixture tests as concurrent
        // processes, and the manifest loader now *repairs* damaged
        // files in place — sharing one path would race.
        manifest = std::string(::testing::TempDir()) +
                   "/rampage_sweep_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".checkpoint";
        std::remove(manifest.c_str());
    }

    void TearDown() override
    {
        setQuiet(false);
        std::remove(manifest.c_str());
    }

    static SimResult fakeResult(Tick elapsed)
    {
        SimResult result;
        result.elapsedPs = elapsed;
        return result;
    }

    /** A small but real simulation (the §4.4 baseline, tiny scale). */
    static SimResult tinyBaseline(std::uint64_t l2_block)
    {
        SimConfig sim;
        sim.maxRefs = 2'000;
        sim.quantumRefs = 500;
        return simulateSystem(
            baselineConfig(200'000'000ull, l2_block), sim);
    }

    /** The §4.7 2-way system at the same tiny scale. */
    static SimResult tinyTwoWay(std::uint64_t l2_block)
    {
        SimConfig sim;
        sim.maxRefs = 2'000;
        sim.quantumRefs = 500;
        return simulateSystem(
            twoWayConfig(200'000'000ull, l2_block), sim);
    }

    /** The §4.5 RAMpage system at the same tiny scale. */
    static SimResult tinyRampage(std::uint64_t page_bytes)
    {
        SimConfig sim;
        sim.maxRefs = 2'000;
        sim.quantumRefs = 500;
        return simulateSystem(
            rampageConfig(200'000'000ull, page_bytes), sim);
    }

    /**
     * The determinism campaign: eight points spanning all three
     * system families plus a poisoned configuration and a synthetic
     * internal bug, so the jobs=1 vs jobs=4 comparison covers Ok and
     * both failure statuses.
     */
    static void addDeterminismPoints(SweepRunner &runner)
    {
        for (std::uint64_t block : {128u, 256u, 512u, 1024u})
            runner.add("baseline/" + std::to_string(block),
                       [block] { return tinyBaseline(block); });
        runner.add("2way/512", [] { return tinyTwoWay(512); });
        runner.add("rampage/1024", [] { return tinyRampage(1024); });
        runner.add("poison/config",
                   [] { return tinyBaseline(16); }); // below the L1 block
        runner.add("poison/internal", []() -> SimResult {
            throw InternalError("synthetic bug");
        });
    }

    /**
     * The manifest's lines as an order-independent set with the
     * wall-clock token blanked: wall time is the one legitimately
     * nondeterministic field, everything else must match exactly.
     * The crc token goes too — it covers the wall text, so it is
     * exactly as nondeterministic as the field it protects.
     */
    static std::vector<std::string> manifestLineSet(
        const std::string &path)
    {
        std::vector<std::string> lines;
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            for (const char *token : {"crc=", "wall="}) {
                std::size_t at = line.find(token);
                if (at == std::string::npos)
                    continue;
                std::size_t end = line.find(' ', at);
                if (end == std::string::npos)
                    end = line.size();
                line.erase(at, end - at);
            }
            lines.push_back(line);
        }
        std::sort(lines.begin(), lines.end());
        return lines;
    }

    std::string manifest;
};

TEST_F(SweepRunnerTest, PoisonedPointsYieldPartialResults)
{
    SweepRunner runner;
    runner.add("good/128", [] { return tinyBaseline(128); });
    runner.add("poison/config",
               [] { return tinyBaseline(16); }); // below the L1 block
    runner.add("good/1024", [] { return tinyBaseline(1024); });
    runner.add("poison/internal", []() -> SimResult {
        throw InternalError("synthetic bug");
    });

    SweepReport report = runner.run();
    ASSERT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(report.okCount(), 2u);
    EXPECT_EQ(report.failedCount(), 2u);
    EXPECT_FALSE(report.allOk());

    EXPECT_EQ(report.outcomes[0].status, PointStatus::Ok);
    EXPECT_TRUE(report.outcomes[0].haveResult);
    EXPECT_GT(report.outcomes[0].result.elapsedPs, 0u);

    EXPECT_EQ(report.outcomes[1].status, PointStatus::Failed);
    EXPECT_EQ(report.outcomes[1].errorCategory, ErrorCategory::Config);
    EXPECT_FALSE(report.outcomes[1].error.empty());

    EXPECT_EQ(report.outcomes[2].status, PointStatus::Ok);

    EXPECT_EQ(report.outcomes[3].status, PointStatus::Failed);
    EXPECT_EQ(report.outcomes[3].errorCategory,
              ErrorCategory::Internal);
}

TEST_F(SweepRunnerTest, DuplicatePointIdsAreRejected)
{
    SweepRunner runner;
    runner.add("p", [] { return fakeResult(1); });
    EXPECT_THROW(runner.add("p", [] { return fakeResult(2); }),
                 ConfigError);
}

TEST_F(SweepRunnerTest, CheckpointResumeSkipsCompletedPoints)
{
    std::atomic<int> executions{0};
    bool poisoned = true;
    auto build = [&](SweepRunner &runner) {
        runner.add("a", [&] {
            ++executions;
            return fakeResult(10);
        });
        runner.add("b", [&]() -> SimResult {
            ++executions;
            if (poisoned)
                throw TraceError("injected trace damage");
            return fakeResult(20);
        });
        runner.add("c", [&] {
            ++executions;
            return fakeResult(30);
        });
    };

    SweepRunner first({manifest});
    build(first);
    SweepReport run1 = first.run();
    EXPECT_EQ(run1.okCount(), 2u);
    EXPECT_EQ(run1.failedCount(), 1u);
    EXPECT_EQ(run1.outcomes[1].errorCategory, ErrorCategory::Trace);
    EXPECT_EQ(executions, 3);

    // Second campaign: the fault is fixed; only 'b' re-executes.
    poisoned = false;
    SweepRunner second({manifest});
    build(second);
    SweepReport run2 = second.run();
    EXPECT_EQ(executions, 4);
    EXPECT_EQ(run2.skippedCount(), 2u);
    EXPECT_EQ(run2.okCount(), 1u);
    EXPECT_TRUE(run2.allOk());
    EXPECT_EQ(run2.outcomes[0].status, PointStatus::Skipped);
    EXPECT_EQ(run2.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(run2.outcomes[2].status, PointStatus::Skipped);
}

TEST_F(SweepRunnerTest, DamagedManifestLinesAreIgnored)
{
    SweepRunner first({manifest});
    std::atomic<int> executions{0};
    first.add("keep", [&] {
        ++executions;
        return fakeResult(5);
    });
    first.run();

    // Simulate a torn write: append garbage to the manifest.
    std::FILE *file = std::fopen(manifest.c_str(), "a");
    ASSERT_NE(file, nullptr);
    std::fprintf(file, "ok wall=0.5 elapsed_ps=");
    std::fclose(file);

    SweepRunner second({manifest});
    second.add("keep", [&] {
        ++executions;
        return fakeResult(5);
    });
    SweepReport report = second.run();
    EXPECT_EQ(report.skippedCount(), 1u);
    EXPECT_EQ(executions, 1);
}

TEST_F(SweepRunnerTest, WatchdogAbortsRunawayPointCleanly)
{
    SweepRunner runner;
    runner.add("runaway", [] {
        SimConfig sim;
        sim.maxRefs = 50'000;
        sim.quantumRefs = 500;
        sim.watchdogRefBudget = 1'000; // absurdly tight on purpose
        return simulateSystem(baselineConfig(200'000'000ull, 1024),
                                    sim);
    });
    runner.add("healthy", [] { return tinyBaseline(1024); });

    SweepReport report = runner.run();
    EXPECT_EQ(report.failedCount(), 1u);
    EXPECT_EQ(report.okCount(), 1u);
    EXPECT_EQ(report.outcomes[0].errorCategory, ErrorCategory::Internal);
    EXPECT_NE(report.outcomes[0].error.find("watchdog"),
              std::string::npos);
}

TEST_F(SweepRunnerTest, OkPointsReportThroughput)
{
    SweepRunner runner;
    runner.add("real", [] { return tinyBaseline(1024); });
    SweepReport report = runner.run();
    ASSERT_EQ(report.okCount(), 1u);
    EXPECT_GE(report.outcomes[0].wallSeconds, 0.0);
    // 2000 refs over nonzero wall time gives a positive rate.
    EXPECT_GT(report.outcomes[0].refsPerSecond, 0.0);
    EXPECT_TRUE(report.outcomes[0].debugTail.empty());
}

TEST_F(SweepRunnerTest, FailedPointCapturesDebugRingTail)
{
    clearDebugRing();
    SweepRunner runner;
    runner.add("noisy-failure", []() -> SimResult {
        // Stand-in for RAMPAGE_DPRINTF events emitted while the point
        // runs (the macro is compiled out in Release, the ring isn't).
        debugRecord(DebugChannel::Pager, "fault vpn=0xabc");
        debugRecord(DebugChannel::Dram, "read 4096 bytes");
        throw InternalError("synthetic post-mortem bug");
    });
    runner.add("clean-failure", []() -> SimResult {
        throw InternalError("no events this time");
    });

    SweepReport report = runner.run();
    ASSERT_EQ(report.failedCount(), 2u);

    const PointOutcome &noisy = report.outcomes[0];
    ASSERT_EQ(noisy.debugTail.size(), 2u);
    EXPECT_EQ(noisy.debugTail[0], "pager: fault vpn=0xabc");
    EXPECT_EQ(noisy.debugTail[1], "dram: read 4096 bytes");

    // Each point starts with a clean ring: the second failure must not
    // inherit the first point's events.
    EXPECT_TRUE(report.outcomes[1].debugTail.empty());
}

TEST_F(SweepRunnerTest, HeartbeatOptionIsHarmless)
{
    SweepRunner::Options opts;
    opts.heartbeatSeconds = 0.000001; // fire at every point boundary
    SweepRunner runner(opts);
    runner.add("a", [] { return fakeResult(1); });
    runner.add("b", [] { return fakeResult(2); });
    SweepReport report = runner.run();
    EXPECT_EQ(report.okCount(), 2u);
}

/**
 * The acceptance scenario end to end: a campaign holding an injected
 * corrupt-trace point and an invalid-config point among healthy ones
 * completes with partial results, and a second run resumes from the
 * manifest without re-simulating the completed points.
 */
TEST_F(SweepRunnerTest, CorruptTraceAndBadConfigCampaignResumes)
{
    std::string trace = std::string(::testing::TempDir()) +
                        "/rampage_sweep_campaign.trace";
    {
        TraceWriter writer(trace);
        MemRef ref;
        ref.pid = 1;
        for (int i = 0; i < 64; ++i) {
            ref.vaddr = 0x1000 + 32 * i;
            writer.write(ref);
        }
    }
    truncateTraceFile(trace, 8 + 64 * 11 - 5); // injected damage

    std::atomic<int> simulated{0};
    auto build = [&](SweepRunner &runner) {
        runner.add("baseline/128", [&] {
            ++simulated;
            return tinyBaseline(128);
        });
        runner.add("trace/corrupt", [&]() -> SimResult {
            TraceReadOptions strict;
            strict.strict = true;
            readTraceFile(trace, 1, strict);
            return SimResult{};
        });
        runner.add("config/invalid", [&] {
            ++simulated;
            return tinyBaseline(16);
        });
        runner.add("baseline/1024", [&] {
            ++simulated;
            return tinyBaseline(1024);
        });
    };

    SweepRunner first({manifest});
    build(first);
    SweepReport run1 = first.run();
    ASSERT_EQ(run1.outcomes.size(), 4u);
    EXPECT_EQ(run1.okCount(), 2u);
    EXPECT_EQ(run1.failedCount(), 2u);
    EXPECT_EQ(run1.outcomes[1].errorCategory, ErrorCategory::Trace);
    EXPECT_EQ(run1.outcomes[2].errorCategory, ErrorCategory::Config);
    EXPECT_TRUE(run1.outcomes[0].haveResult);
    EXPECT_TRUE(run1.outcomes[3].haveResult);
    EXPECT_EQ(simulated, 3); // two healthy + the invalid-config attempt

    SweepRunner second({manifest});
    build(second);
    SweepReport run2 = second.run();
    EXPECT_EQ(run2.skippedCount(), 2u); // healthy points not re-simulated
    EXPECT_EQ(run2.failedCount(), 2u);  // still-broken points re-tried
    EXPECT_EQ(simulated, 4); // only the invalid-config attempt repeats

    std::remove(trace.c_str());
}

// A resumed campaign appends to a manifest that already has content.
// The header decision must look at the file's real size, not the
// append-stream's initial position (implementation-defined per C11
// 7.21.5.3), or every resume writes a second header line.
TEST_F(SweepRunnerTest, ManifestHeaderWrittenOnceAcrossResumes)
{
    {
        SweepRunner first({manifest});
        first.add("a", [] { return fakeResult(1); });
        first.run();
    }
    {
        SweepRunner second({manifest});
        second.add("a", [] { return fakeResult(1); });
        second.add("b", [] { return fakeResult(2); });
        SweepReport report = second.run();
        EXPECT_EQ(report.skippedCount(), 1u);
        EXPECT_EQ(report.okCount(), 1u);
    }

    std::ifstream in(manifest);
    ASSERT_TRUE(in.is_open());
    int headers = 0;
    int ok_lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("# rampage-sweep-checkpoint", 0) == 0)
            ++headers;
        // v2 completion lines carry a "crc=XXXXXXXX " prefix.
        if (line.rfind("crc=", 0) == 0 &&
            line.find(" ok ") == 12)
            ++ok_lines;
    }
    EXPECT_EQ(headers, 1);
    EXPECT_EQ(ok_lines, 2);
}

// The heartbeat is driven by the reporter's timed wait, so it fires
// while one long point is still mid-simulation, and it reports points
// simulated this run separately from checkpoint skips instead of
// folding the skips into apparent progress.
TEST_F(SweepRunnerTest, HeartbeatFiresDuringLongPointAndSplitsSkips)
{
    {
        SweepRunner first({manifest});
        first.add("fast", [] { return fakeResult(1); });
        first.run();
    }

    SweepRunner::Options opts;
    opts.checkpointPath = manifest;
    opts.heartbeatSeconds = 0.05;
    SweepRunner second(opts);
    second.add("fast", [] { return fakeResult(1); });
    second.add("slow", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return fakeResult(2);
    });

    setQuiet(false);
    ::testing::internal::CaptureStderr();
    SweepReport report = second.run();
    std::string err = ::testing::internal::GetCapturedStderr();
    setQuiet(true);

    EXPECT_EQ(report.skippedCount(), 1u);
    EXPECT_EQ(report.okCount(), 1u);
    // Fired before 'slow' finished: nothing simulated yet, one skip.
    EXPECT_NE(err.find("heartbeat 0/1 points simulated this run "
                       "(1 skipped)"),
              std::string::npos)
        << err;
}

// The tentpole guarantee: a parallel campaign is observably identical
// to a serial one — same per-point statuses, errors, simulated times
// and stats snapshots, and the same checkpoint-manifest line set.
TEST_F(SweepRunnerTest, ParallelRunMatchesSerialRun)
{
    std::string manifest4 = manifest + ".jobs4";
    std::remove(manifest4.c_str());

    SweepRunner::Options serial_opts;
    serial_opts.checkpointPath = manifest;
    serial_opts.jobs = 1;
    SweepRunner serial(serial_opts);
    addDeterminismPoints(serial);
    SweepReport one = serial.run();

    SweepRunner::Options parallel_opts;
    parallel_opts.checkpointPath = manifest4;
    parallel_opts.jobs = 4;
    SweepRunner parallel(parallel_opts);
    addDeterminismPoints(parallel);
    SweepReport four = parallel.run();

    ASSERT_EQ(one.outcomes.size(), 8u);
    ASSERT_EQ(four.outcomes.size(), 8u);
    EXPECT_EQ(one.okCount(), 6u);
    EXPECT_EQ(one.failedCount(), 2u);
    for (std::size_t i = 0; i < one.outcomes.size(); ++i) {
        const PointOutcome &a = one.outcomes[i];
        const PointOutcome &b = four.outcomes[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.status, b.status) << a.id;
        EXPECT_EQ(a.errorCategory, b.errorCategory) << a.id;
        EXPECT_EQ(a.error, b.error) << a.id;
        EXPECT_EQ(a.haveResult, b.haveResult) << a.id;
        EXPECT_EQ(a.result.elapsedPs, b.result.elapsedPs) << a.id;
        EXPECT_EQ(a.result.stats.toText(), b.result.stats.toText())
            << a.id;
    }
    EXPECT_EQ(manifestLineSet(manifest), manifestLineSet(manifest4));

    std::remove(manifest4.c_str());
}

// Same determinism bar with model-integrity audits armed and a fault
// injected: the parallel run must reject the same point for the same
// violated invariant the serial run names.
TEST_F(SweepRunnerTest, ParallelAuditedFaultMatchesSerial)
{
    auto build = [](SweepRunner &runner) {
        runner.add("faulty/leak-frame", [] {
            RampageConfig cfg = rampageConfig(1'000'000'000ull, 1024);
            cfg.pager.baseSramBytes = 256 * kib;
            SimConfig sim;
            sim.maxRefs = 60'000;
            sim.quantumRefs = 10'000;
            sim.auditLevel = AuditLevel::Boundaries;
            sim.faultPlan = "leak-frame";
            return simulateSystem(cfg, sim);
        });
        runner.add("clean/baseline", [] { return tinyBaseline(1024); });
        runner.add("clean/rampage", [] { return tinyRampage(1024); });
    };

    auto runWith = [&](unsigned jobs) {
        SweepRunner::Options opts;
        opts.jobs = jobs;
        SweepRunner runner(opts);
        build(runner);
        return runner.run();
    };
    SweepReport one = runWith(1);
    SweepReport four = runWith(4);

    ASSERT_EQ(one.outcomes.size(), 3u);
    ASSERT_EQ(four.outcomes.size(), 3u);
    EXPECT_EQ(one.outcomes[0].status, PointStatus::AuditFailed);
    EXPECT_EQ(four.outcomes[0].status, PointStatus::AuditFailed);
    EXPECT_EQ(one.outcomes[0].auditInvariant, "pager.leak");
    EXPECT_EQ(four.outcomes[0].auditInvariant,
              one.outcomes[0].auditInvariant);
    EXPECT_EQ(four.outcomes[0].error, one.outcomes[0].error);
    for (std::size_t i = 1; i < 3; ++i) {
        EXPECT_EQ(one.outcomes[i].status, PointStatus::Ok);
        EXPECT_EQ(four.outcomes[i].status, PointStatus::Ok);
        EXPECT_EQ(four.outcomes[i].result.elapsedPs,
                  one.outcomes[i].result.elapsedPs);
    }
}

// Options::jobs = 0 defers to resolveJobs() so the --jobs flag and
// RAMPAGE_JOBS reach embedders that never touch the option, and a
// pool wider than the campaign is harmless.
TEST_F(SweepRunnerTest, MoreWorkersThanPointsIsHarmless)
{
    SweepRunner::Options opts;
    opts.jobs = 32;
    SweepRunner runner(opts);
    runner.add("only", [] { return fakeResult(7); });
    SweepReport report = runner.run();
    ASSERT_EQ(report.okCount(), 1u);
    EXPECT_EQ(report.outcomes[0].id, "only");
}

// ---------------------------------------------------------- deadlines

// A runaway point is cancelled cooperatively at the watchdog seam:
// the outcome records TimedOut with the references executed at
// cancel, healthy points are untouched, and the timed-out point is
// NOT checkpointed — a resume re-runs it.
TEST_F(SweepRunnerTest, DeadlineCancelsRunawayPointCooperatively)
{
    auto runaway = [] {
        // Far more work than the deadline allows at this scale; the
        // per-reference deadline poll cancels it mid-simulation.
        SimConfig sim;
        sim.maxRefs = 400'000'000;
        sim.quantumRefs = 100'000;
        return simulateSystem(baselineConfig(200'000'000ull, 128),
                              sim);
    };

    SweepRunner::Options opts;
    opts.checkpointPath = manifest;
    opts.jobs = 1;
    opts.pointDeadlineSeconds = 0.2;
    SweepRunner runner(opts);
    runner.add("runaway", runaway);
    runner.add("healthy", [] { return tinyBaseline(1024); });

    SweepReport report = runner.run();
    ASSERT_EQ(report.outcomes.size(), 2u);
    EXPECT_EQ(report.outcomes[0].status, PointStatus::TimedOut);
    EXPECT_EQ(report.outcomes[0].errorCategory,
              ErrorCategory::Timeout);
    EXPECT_GT(report.outcomes[0].refsAtCancel, 0u);
    EXPECT_NE(report.outcomes[0].error.find("deadline"),
              std::string::npos);
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(report.timedOutCount(), 1u);
    EXPECT_FALSE(report.allOk());

    // Only the healthy point is checkpointed.
    std::vector<std::string> lines = manifestLineSet(manifest);
    for (const std::string &line : lines)
        EXPECT_EQ(line.find("id=runaway"), std::string::npos) << line;
}

// The injected hang fault spins at the cancellation seam forever; a
// deadline turns that into a TimedOut outcome within a small factor
// of the configured bound.
TEST_F(SweepRunnerTest, HangFaultTimesOutWithinDeadline)
{
    setSweepFaultOverride("hang@stuck");
    SweepRunner::Options opts;
    opts.jobs = 1;
    opts.pointDeadlineSeconds = 0.2;
    SweepRunner runner(opts);
    runner.add("stuck", [] { return fakeResult(1); });
    runner.add("fine", [] { return fakeResult(2); });

    auto started = std::chrono::steady_clock::now();
    SweepReport report = runner.run();
    double took = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started)
                      .count();
    setSweepFaultOverride("");

    ASSERT_EQ(report.outcomes.size(), 2u);
    EXPECT_EQ(report.outcomes[0].status, PointStatus::TimedOut);
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Ok);
    EXPECT_LT(took, 5.0); // cancelled, not hung
}

TEST_F(SweepRunnerTest, DeadlineParsingIsStrict)
{
    EXPECT_THROW(parsePointDeadline("abc"), ConfigError);
    EXPECT_THROW(parsePointDeadline("-1"), ConfigError);
    EXPECT_THROW(parsePointDeadline("0"), ConfigError);
    EXPECT_THROW(parsePointDeadline("1.5x"), ConfigError);
    EXPECT_THROW(parsePointDeadline(""), ConfigError);
    EXPECT_THROW(parsePointDeadline("inf"), ConfigError);
    EXPECT_DOUBLE_EQ(parsePointDeadline("2.5"), 2.5);
    EXPECT_DOUBLE_EQ(parsePointDeadline(".5"), 0.5);

    // Environment resolution uses the same strict parse.
    setPointDeadlineOverride(0);
    ::setenv("RAMPAGE_DEADLINE", "soon", 1);
    EXPECT_THROW(resolvePointDeadline(), ConfigError);
    ::setenv("RAMPAGE_DEADLINE", "1.25", 1);
    EXPECT_DOUBLE_EQ(resolvePointDeadline(), 1.25);
    ::unsetenv("RAMPAGE_DEADLINE");
    EXPECT_DOUBLE_EQ(resolvePointDeadline(), 0);
}

// ------------------------------------------------------------ retries

// A transient (trace/io) failure retries up to maxRetries with the
// attempt count recorded in the outcome and the manifest line; a
// deterministic config failure never retries.
TEST_F(SweepRunnerTest, TransientFailuresRetryDeterministicOnesDoNot)
{
    std::atomic<int> flaky_runs{0};
    std::atomic<int> config_runs{0};

    SweepRunner::Options opts;
    opts.checkpointPath = manifest;
    opts.jobs = 1;
    opts.maxRetries = 3;
    opts.retryBackoffSeconds = 0.001;
    SweepRunner runner(opts);
    runner.add("flaky", [&]() -> SimResult {
        if (++flaky_runs < 3)
            throw TraceError("transient trace damage");
        return fakeResult(42);
    });
    runner.add("broken", [&]() -> SimResult {
        ++config_runs;
        throw ConfigError("deterministically invalid");
    });

    SweepReport report = runner.run();
    ASSERT_EQ(report.outcomes.size(), 2u);
    EXPECT_EQ(report.outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(report.outcomes[0].attempts, 3u);
    EXPECT_EQ(flaky_runs, 3);
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Failed);
    EXPECT_EQ(report.outcomes[1].attempts, 1u);
    EXPECT_EQ(config_runs, 1);

    // The manifest records how many attempts the completion took.
    bool found = false;
    for (const std::string &line : manifestLineSet(manifest))
        if (line.find("id=flaky") != std::string::npos) {
            EXPECT_NE(line.find("attempts=3"), std::string::npos)
                << line;
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST_F(SweepRunnerTest, RetriesExhaustedReportsLastError)
{
    std::atomic<int> runs{0};
    SweepRunner::Options opts;
    opts.jobs = 1;
    opts.maxRetries = 2;
    opts.retryBackoffSeconds = 0.001;
    SweepRunner runner(opts);
    runner.add("always-bad", [&]() -> SimResult {
        ++runs;
        throw IoError("disk on fire");
    });

    SweepReport report = runner.run();
    EXPECT_EQ(report.outcomes[0].status, PointStatus::Failed);
    EXPECT_EQ(report.outcomes[0].errorCategory, ErrorCategory::Io);
    EXPECT_EQ(report.outcomes[0].attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(runs, 3);
}

TEST_F(SweepRunnerTest, RetryCategoryClassification)
{
    EXPECT_TRUE(isRetryableCategory(ErrorCategory::Trace));
    EXPECT_TRUE(isRetryableCategory(ErrorCategory::Io));
    EXPECT_FALSE(isRetryableCategory(ErrorCategory::Config));
    EXPECT_FALSE(isRetryableCategory(ErrorCategory::Internal));
    EXPECT_FALSE(isRetryableCategory(ErrorCategory::Audit));
    EXPECT_FALSE(isRetryableCategory(ErrorCategory::Timeout));
}

TEST_F(SweepRunnerTest, RetriesAndIsolateParsingAreStrict)
{
    EXPECT_THROW(parseRetries("abc"), ConfigError);
    EXPECT_THROW(parseRetries("-1"), ConfigError);
    EXPECT_THROW(parseRetries("3x"), ConfigError);
    EXPECT_THROW(parseRetries("17"), ConfigError); // > maxSweepRetries
    EXPECT_EQ(parseRetries("0"), 0u);
    EXPECT_EQ(parseRetries("16"), 16u);

    setRetriesOverride(-1);
    ::setenv("RAMPAGE_RETRIES", "many", 1);
    EXPECT_THROW(resolveRetries(), ConfigError);
    ::setenv("RAMPAGE_RETRIES", "2", 1);
    EXPECT_EQ(resolveRetries(), 2u);
    ::unsetenv("RAMPAGE_RETRIES");
    EXPECT_EQ(resolveRetries(), 0u);

    setIsolateOverride(-1);
    ::setenv("RAMPAGE_ISOLATE", "yes", 1);
    EXPECT_THROW(resolveIsolate(), ConfigError);
    ::setenv("RAMPAGE_ISOLATE", "1", 1);
    EXPECT_TRUE(resolveIsolate());
    ::setenv("RAMPAGE_ISOLATE", "0", 1);
    EXPECT_FALSE(resolveIsolate());
    ::unsetenv("RAMPAGE_ISOLATE");
    EXPECT_FALSE(resolveIsolate());
}

// -------------------------------------------------- process isolation

// NOTE: isolation tests pin jobs = 1.  fork() from a multithreaded
// process may only safely call async-signal-safe functions in the
// child, and TSan rejects it outright; the runner itself forks from
// its worker threads, which is safe for *this* child (it only
// simulates and writes a pipe), but the tests stay conservative.

// A point that dies of SIGSEGV becomes a Crashed outcome carrying the
// signal and the debug-ring tail it relayed before dying, and the
// campaign continues to the next point.
TEST_F(SweepRunnerTest, IsolatedCrashIsContainedWithRingTail)
{
    SweepRunner::Options opts;
    opts.jobs = 1;
    opts.isolate = 1;
    SweepRunner runner(opts);
    runner.add("doomed", []() -> SimResult {
        debugRecordRaw("pager: about to dereference garbage");
        ::raise(SIGSEGV);
        return SimResult{};
    });
    runner.add("survivor", [] { return tinyBaseline(1024); });

    SweepReport report = runner.run();
    ASSERT_EQ(report.outcomes.size(), 2u);
    EXPECT_EQ(report.outcomes[0].status, PointStatus::Crashed);
    EXPECT_EQ(report.outcomes[0].signalNumber, SIGSEGV);
    EXPECT_NE(report.outcomes[0].error.find("signal"),
              std::string::npos);
    ASSERT_FALSE(report.outcomes[0].debugTail.empty());
    EXPECT_NE(report.outcomes[0]
                  .debugTail.back()
                  .find("dereference garbage"),
              std::string::npos);
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(report.crashedCount(), 1u);
    EXPECT_FALSE(report.allOk());
}

// The injected crash fault exercises the same containment through
// the fault-injection plumbing the CI smoke uses.
TEST_F(SweepRunnerTest, IsolatedCrashFaultIsContained)
{
    setSweepFaultOverride("crash@victim");
    SweepRunner::Options opts;
    opts.jobs = 1;
    opts.isolate = 1;
    SweepRunner runner(opts);
    runner.add("victim", [] { return fakeResult(1); });
    runner.add("bystander", [] { return fakeResult(2); });
    SweepReport report = runner.run();
    setSweepFaultOverride("");

    EXPECT_EQ(report.outcomes[0].status, PointStatus::Crashed);
    EXPECT_EQ(report.outcomes[0].signalNumber, SIGSEGV);
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Ok);
}

// Every observable of an isolated campaign — statuses, categories,
// error text, audit invariants, simulated times, the full stats
// snapshot — must match the in-process run bit for bit: doubles cross
// the pipe as bit patterns, exceptions are rebuilt field-exact.
TEST_F(SweepRunnerTest, IsolatedCampaignMatchesInProcess)
{
    auto build = [](SweepRunner &runner) {
        runner.add("baseline/512", [] { return tinyBaseline(512); });
        runner.add("2way/512", [] { return tinyTwoWay(512); });
        runner.add("rampage/1024", [] { return tinyRampage(1024); });
        runner.add("poison/config",
                   [] { return tinyBaseline(16); });
        runner.add("faulty/leak-frame", [] {
            RampageConfig cfg = rampageConfig(1'000'000'000ull, 1024);
            cfg.pager.baseSramBytes = 256 * kib;
            SimConfig sim;
            sim.maxRefs = 60'000;
            sim.quantumRefs = 10'000;
            sim.auditLevel = AuditLevel::Boundaries;
            sim.faultPlan = "leak-frame";
            return simulateSystem(cfg, sim);
        });
    };

    auto runWith = [&](int isolate) {
        SweepRunner::Options opts;
        opts.jobs = 1;
        opts.isolate = isolate;
        SweepRunner runner(opts);
        build(runner);
        return runner.run();
    };
    SweepReport inProcess = runWith(0);
    SweepReport forked = runWith(1);

    ASSERT_EQ(inProcess.outcomes.size(), forked.outcomes.size());
    for (std::size_t i = 0; i < inProcess.outcomes.size(); ++i) {
        const PointOutcome &a = inProcess.outcomes[i];
        const PointOutcome &b = forked.outcomes[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.status, b.status) << a.id;
        EXPECT_EQ(a.errorCategory, b.errorCategory) << a.id;
        EXPECT_EQ(a.error, b.error) << a.id;
        EXPECT_EQ(a.auditInvariant, b.auditInvariant) << a.id;
        EXPECT_EQ(a.haveResult, b.haveResult) << a.id;
        EXPECT_EQ(a.result.elapsedPs, b.result.elapsedPs) << a.id;
        EXPECT_EQ(a.result.stallPs, b.result.stallPs) << a.id;
        EXPECT_EQ(a.result.systemName, b.result.systemName) << a.id;
        EXPECT_EQ(a.result.issueHz, b.result.issueHz) << a.id;
        EXPECT_EQ(a.result.counts.refs, b.result.counts.refs) << a.id;
        EXPECT_EQ(a.result.stats.toText(), b.result.stats.toText())
            << a.id;
        // Rebuilt exceptions rethrow with identical what().
        if (a.exception) {
            ASSERT_TRUE(b.exception) << a.id;
            std::string what_a, what_b;
            try {
                std::rethrow_exception(a.exception);
            } catch (const std::exception &e) {
                what_a = e.what();
            }
            try {
                std::rethrow_exception(b.exception);
            } catch (const std::exception &e) {
                what_b = e.what();
            }
            EXPECT_EQ(what_a, what_b) << a.id;
        }
    }
}

// A child that hangs WITHOUT reaching the cooperative seam (a plain
// blocking sleep) is hard-killed by the parent at deadline + grace
// and reported TimedOut.
TEST_F(SweepRunnerTest, IsolatedNonPollingHangIsHardKilled)
{
    SweepRunner::Options opts;
    opts.jobs = 1;
    opts.isolate = 1;
    opts.pointDeadlineSeconds = 0.2;
    SweepRunner runner(opts);
    runner.add("comatose", [] {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return fakeResult(1);
    });

    auto started = std::chrono::steady_clock::now();
    SweepReport report = runner.run();
    double took = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started)
                      .count();

    EXPECT_EQ(report.outcomes[0].status, PointStatus::TimedOut);
    EXPECT_EQ(report.outcomes[0].errorCategory,
              ErrorCategory::Timeout);
    EXPECT_NE(report.outcomes[0].error.find("killed"),
              std::string::npos);
    EXPECT_LT(took, 10.0); // nowhere near the 30 s sleep
}

// ------------------------------------------------- manifest edges

// The torn-final-line repair: a manifest whose last append was cut
// mid-line resumes with every complete point skipped, re-simulates
// exactly the torn one, and leaves the file healed.
TEST_F(SweepRunnerTest, TornFinalManifestLineIsRepairedAndReSimulated)
{
    std::atomic<int> a_runs{0}, b_runs{0};
    auto build = [&](SweepRunner &runner) {
        runner.add("a", [&] {
            ++a_runs;
            return fakeResult(10);
        });
        runner.add("b", [&] {
            ++b_runs;
            return fakeResult(20);
        });
    };

    {
        SweepRunner first({manifest});
        build(first);
        first.run();
    }
    EXPECT_EQ(a_runs, 1);
    EXPECT_EQ(b_runs, 1);

    // Tear the final line mid-append, exactly as a SIGKILL would.
    std::ifstream in(manifest, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::size_t last_line =
        text.rfind('\n', text.size() - 2) + 1;
    std::size_t cut = last_line + (text.size() - last_line) / 2;
    std::ofstream out(manifest,
                      std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(cut));
    out.close();

    SweepRunner second({manifest});
    build(second);
    SweepReport report = second.run();
    EXPECT_EQ(report.outcomes[0].status, PointStatus::Skipped);
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(a_runs, 1); // intact line still skips
    EXPECT_EQ(b_runs, 2); // exactly the torn point re-simulated

    // The file healed: a third resume skips everything.
    SweepRunner third({manifest});
    build(third);
    SweepReport again = third.run();
    EXPECT_EQ(again.skippedCount(), 2u);
}

// An interior line whose CRC does not match its body (bit rot, hand
// edits) is ignored, costing exactly that point a re-simulation.
TEST_F(SweepRunnerTest, CrcMismatchedManifestLineIsReSimulated)
{
    std::atomic<int> a_runs{0};
    auto build = [&](SweepRunner &runner) {
        runner.add("a", [&] {
            ++a_runs;
            return fakeResult(10);
        });
    };
    {
        SweepRunner first({manifest});
        build(first);
        first.run();
    }

    // Flip a digit inside the protected body; the CRC now lies.
    std::ifstream in(manifest, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::size_t at = text.find("elapsed_ps=10");
    ASSERT_NE(at, std::string::npos);
    text[at + 11] = '9';
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << text;
    out.close();

    SweepRunner second({manifest});
    build(second);
    SweepReport report = second.run();
    EXPECT_EQ(report.outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(a_runs, 2);
}

// Two runs racing on one manifest can append the same completion
// twice; a resume collapses the duplicate to a single skip.
TEST_F(SweepRunnerTest, DuplicateManifestEntriesCollapseToOneSkip)
{
    std::atomic<int> runs{0};
    auto build = [&](SweepRunner &runner) {
        runner.add("a", [&] {
            ++runs;
            return fakeResult(10);
        });
    };
    {
        SweepRunner first({manifest});
        build(first);
        first.run();
    }

    // Duplicate the completion line, as a concurrent stale run would.
    std::ifstream in(manifest, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::size_t line_at = text.find("crc=");
    ASSERT_NE(line_at, std::string::npos);
    std::ofstream out(manifest,
                      std::ios::binary | std::ios::app);
    out << text.substr(line_at);
    out.close();

    SweepRunner second({manifest});
    build(second);
    SweepReport report = second.run();
    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_EQ(report.outcomes[0].status, PointStatus::Skipped);
    EXPECT_EQ(runs, 1);
}

// A manifest from a newer build must be refused with an error naming
// the version — guessing at an unknown format could silently skip
// points that are not done.
TEST_F(SweepRunnerTest, NewerManifestVersionIsRejected)
{
    {
        std::ofstream out(manifest);
        out << "# rampage-sweep-checkpoint v3\n"
            << "shape-of-things-to-come ok id=a\n";
    }
    SweepRunner runner({manifest});
    runner.add("a", [] { return fakeResult(1); });
    try {
        runner.run();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("v3"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find(manifest),
                  std::string::npos)
            << e.what();
    }
}

// v1 manifests (pre-CRC) keep resuming via the legacy lenient parse.
TEST_F(SweepRunnerTest, LegacyV1ManifestStillResumes)
{
    {
        std::ofstream out(manifest);
        out << "# rampage-sweep-checkpoint v1\n"
            << "ok wall=0.5 elapsed_ps=100 id=a\n"
            << "audit wall=0.1 invariant=pager.leak id=b\n";
    }
    std::atomic<int> runs{0};
    SweepRunner runner({manifest});
    runner.add("a", [&] {
        ++runs;
        return fakeResult(1);
    });
    runner.add("b", [&] {
        ++runs;
        return fakeResult(2);
    });
    SweepReport report = runner.run();
    EXPECT_EQ(report.outcomes[0].status, PointStatus::Skipped);
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(runs, 1); // audit line is forensic, not a completion
}

// The torn-manifest-line fault tears a real append through the real
// writer; the next campaign re-simulates exactly the torn point.
TEST_F(SweepRunnerTest, TornManifestLineFaultCostsOnePoint)
{
    std::atomic<int> a_runs{0}, b_runs{0}, c_runs{0};
    auto build = [&](SweepRunner &runner) {
        runner.add("a", [&] {
            ++a_runs;
            return fakeResult(10);
        });
        runner.add("b", [&] {
            ++b_runs;
            return fakeResult(20);
        });
        runner.add("c", [&] {
            ++c_runs;
            return fakeResult(30);
        });
    };

    setSweepFaultOverride("torn-manifest-line@b");
    {
        SweepRunner first({manifest});
        build(first);
        SweepReport report = first.run();
        EXPECT_EQ(report.okCount(), 3u); // the tear is invisible live
    }
    setSweepFaultOverride("");

    SweepRunner second({manifest});
    build(second);
    SweepReport report = second.run();
    EXPECT_EQ(report.outcomes[0].status, PointStatus::Skipped);
    EXPECT_EQ(report.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(report.outcomes[2].status, PointStatus::Skipped);
    EXPECT_EQ(a_runs, 1);
    EXPECT_EQ(b_runs, 2);
    EXPECT_EQ(c_runs, 1);
}

} // namespace
} // namespace rampage
