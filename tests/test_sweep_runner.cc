/**
 * @file
 * Fault-tolerant sweep engine tests: poisoned points fail in
 * isolation with a categorized outcome, completed points checkpoint
 * to the manifest, and a re-run resumes without re-simulating them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/sweep.hh"
#include "trace/corrupter.hh"
#include "trace/file_format.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{
namespace
{

class SweepRunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        manifest = std::string(::testing::TempDir()) +
                   "/rampage_sweep.checkpoint";
        std::remove(manifest.c_str());
    }

    void TearDown() override
    {
        setQuiet(false);
        std::remove(manifest.c_str());
    }

    static SimResult fakeResult(Tick elapsed)
    {
        SimResult result;
        result.elapsedPs = elapsed;
        return result;
    }

    /** A small but real simulation (the §4.4 baseline, tiny scale). */
    static SimResult tinyBaseline(std::uint64_t l2_block)
    {
        SimConfig sim;
        sim.maxRefs = 2'000;
        sim.quantumRefs = 500;
        return simulateConventional(
            baselineConfig(200'000'000ull, l2_block), sim);
    }

    std::string manifest;
};

TEST_F(SweepRunnerTest, PoisonedPointsYieldPartialResults)
{
    SweepRunner runner;
    runner.add("good/128", [] { return tinyBaseline(128); });
    runner.add("poison/config",
               [] { return tinyBaseline(16); }); // below the L1 block
    runner.add("good/1024", [] { return tinyBaseline(1024); });
    runner.add("poison/internal", []() -> SimResult {
        throw InternalError("synthetic bug");
    });

    SweepReport report = runner.run();
    ASSERT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(report.okCount(), 2u);
    EXPECT_EQ(report.failedCount(), 2u);
    EXPECT_FALSE(report.allOk());

    EXPECT_EQ(report.outcomes[0].status, PointStatus::Ok);
    EXPECT_TRUE(report.outcomes[0].haveResult);
    EXPECT_GT(report.outcomes[0].result.elapsedPs, 0u);

    EXPECT_EQ(report.outcomes[1].status, PointStatus::Failed);
    EXPECT_EQ(report.outcomes[1].errorCategory, ErrorCategory::Config);
    EXPECT_FALSE(report.outcomes[1].error.empty());

    EXPECT_EQ(report.outcomes[2].status, PointStatus::Ok);

    EXPECT_EQ(report.outcomes[3].status, PointStatus::Failed);
    EXPECT_EQ(report.outcomes[3].errorCategory,
              ErrorCategory::Internal);
}

TEST_F(SweepRunnerTest, DuplicatePointIdsAreRejected)
{
    SweepRunner runner;
    runner.add("p", [] { return fakeResult(1); });
    EXPECT_THROW(runner.add("p", [] { return fakeResult(2); }),
                 ConfigError);
}

TEST_F(SweepRunnerTest, CheckpointResumeSkipsCompletedPoints)
{
    int executions = 0;
    bool poisoned = true;
    auto build = [&](SweepRunner &runner) {
        runner.add("a", [&] {
            ++executions;
            return fakeResult(10);
        });
        runner.add("b", [&]() -> SimResult {
            ++executions;
            if (poisoned)
                throw TraceError("injected trace damage");
            return fakeResult(20);
        });
        runner.add("c", [&] {
            ++executions;
            return fakeResult(30);
        });
    };

    SweepRunner first({manifest});
    build(first);
    SweepReport run1 = first.run();
    EXPECT_EQ(run1.okCount(), 2u);
    EXPECT_EQ(run1.failedCount(), 1u);
    EXPECT_EQ(run1.outcomes[1].errorCategory, ErrorCategory::Trace);
    EXPECT_EQ(executions, 3);

    // Second campaign: the fault is fixed; only 'b' re-executes.
    poisoned = false;
    SweepRunner second({manifest});
    build(second);
    SweepReport run2 = second.run();
    EXPECT_EQ(executions, 4);
    EXPECT_EQ(run2.skippedCount(), 2u);
    EXPECT_EQ(run2.okCount(), 1u);
    EXPECT_TRUE(run2.allOk());
    EXPECT_EQ(run2.outcomes[0].status, PointStatus::Skipped);
    EXPECT_EQ(run2.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(run2.outcomes[2].status, PointStatus::Skipped);
}

TEST_F(SweepRunnerTest, DamagedManifestLinesAreIgnored)
{
    SweepRunner first({manifest});
    int executions = 0;
    first.add("keep", [&] {
        ++executions;
        return fakeResult(5);
    });
    first.run();

    // Simulate a torn write: append garbage to the manifest.
    std::FILE *file = std::fopen(manifest.c_str(), "a");
    ASSERT_NE(file, nullptr);
    std::fprintf(file, "ok wall=0.5 elapsed_ps=");
    std::fclose(file);

    SweepRunner second({manifest});
    second.add("keep", [&] {
        ++executions;
        return fakeResult(5);
    });
    SweepReport report = second.run();
    EXPECT_EQ(report.skippedCount(), 1u);
    EXPECT_EQ(executions, 1);
}

TEST_F(SweepRunnerTest, WatchdogAbortsRunawayPointCleanly)
{
    SweepRunner runner;
    runner.add("runaway", [] {
        SimConfig sim;
        sim.maxRefs = 50'000;
        sim.quantumRefs = 500;
        sim.watchdogRefBudget = 1'000; // absurdly tight on purpose
        return simulateConventional(baselineConfig(200'000'000ull, 1024),
                                    sim);
    });
    runner.add("healthy", [] { return tinyBaseline(1024); });

    SweepReport report = runner.run();
    EXPECT_EQ(report.failedCount(), 1u);
    EXPECT_EQ(report.okCount(), 1u);
    EXPECT_EQ(report.outcomes[0].errorCategory, ErrorCategory::Internal);
    EXPECT_NE(report.outcomes[0].error.find("watchdog"),
              std::string::npos);
}

TEST_F(SweepRunnerTest, OkPointsReportThroughput)
{
    SweepRunner runner;
    runner.add("real", [] { return tinyBaseline(1024); });
    SweepReport report = runner.run();
    ASSERT_EQ(report.okCount(), 1u);
    EXPECT_GE(report.outcomes[0].wallSeconds, 0.0);
    // 2000 refs over nonzero wall time gives a positive rate.
    EXPECT_GT(report.outcomes[0].refsPerSecond, 0.0);
    EXPECT_TRUE(report.outcomes[0].debugTail.empty());
}

TEST_F(SweepRunnerTest, FailedPointCapturesDebugRingTail)
{
    clearDebugRing();
    SweepRunner runner;
    runner.add("noisy-failure", []() -> SimResult {
        // Stand-in for RAMPAGE_DPRINTF events emitted while the point
        // runs (the macro is compiled out in Release, the ring isn't).
        debugRecord(DebugChannel::Pager, "fault vpn=0xabc");
        debugRecord(DebugChannel::Dram, "read 4096 bytes");
        throw InternalError("synthetic post-mortem bug");
    });
    runner.add("clean-failure", []() -> SimResult {
        throw InternalError("no events this time");
    });

    SweepReport report = runner.run();
    ASSERT_EQ(report.failedCount(), 2u);

    const PointOutcome &noisy = report.outcomes[0];
    ASSERT_EQ(noisy.debugTail.size(), 2u);
    EXPECT_EQ(noisy.debugTail[0], "pager: fault vpn=0xabc");
    EXPECT_EQ(noisy.debugTail[1], "dram: read 4096 bytes");

    // Each point starts with a clean ring: the second failure must not
    // inherit the first point's events.
    EXPECT_TRUE(report.outcomes[1].debugTail.empty());
}

TEST_F(SweepRunnerTest, HeartbeatOptionIsHarmless)
{
    SweepRunner::Options opts;
    opts.heartbeatSeconds = 0.000001; // fire at every point boundary
    SweepRunner runner(opts);
    runner.add("a", [] { return fakeResult(1); });
    runner.add("b", [] { return fakeResult(2); });
    SweepReport report = runner.run();
    EXPECT_EQ(report.okCount(), 2u);
}

/**
 * The acceptance scenario end to end: a campaign holding an injected
 * corrupt-trace point and an invalid-config point among healthy ones
 * completes with partial results, and a second run resumes from the
 * manifest without re-simulating the completed points.
 */
TEST_F(SweepRunnerTest, CorruptTraceAndBadConfigCampaignResumes)
{
    std::string trace = std::string(::testing::TempDir()) +
                        "/rampage_sweep_campaign.trace";
    {
        TraceWriter writer(trace);
        MemRef ref;
        ref.pid = 1;
        for (int i = 0; i < 64; ++i) {
            ref.vaddr = 0x1000 + 32 * i;
            writer.write(ref);
        }
    }
    truncateTraceFile(trace, 8 + 64 * 11 - 5); // injected damage

    int simulated = 0;
    auto build = [&](SweepRunner &runner) {
        runner.add("baseline/128", [&] {
            ++simulated;
            return tinyBaseline(128);
        });
        runner.add("trace/corrupt", [&]() -> SimResult {
            TraceReadOptions strict;
            strict.strict = true;
            readTraceFile(trace, 1, strict);
            return SimResult{};
        });
        runner.add("config/invalid", [&] {
            ++simulated;
            return tinyBaseline(16);
        });
        runner.add("baseline/1024", [&] {
            ++simulated;
            return tinyBaseline(1024);
        });
    };

    SweepRunner first({manifest});
    build(first);
    SweepReport run1 = first.run();
    ASSERT_EQ(run1.outcomes.size(), 4u);
    EXPECT_EQ(run1.okCount(), 2u);
    EXPECT_EQ(run1.failedCount(), 2u);
    EXPECT_EQ(run1.outcomes[1].errorCategory, ErrorCategory::Trace);
    EXPECT_EQ(run1.outcomes[2].errorCategory, ErrorCategory::Config);
    EXPECT_TRUE(run1.outcomes[0].haveResult);
    EXPECT_TRUE(run1.outcomes[3].haveResult);
    EXPECT_EQ(simulated, 3); // two healthy + the invalid-config attempt

    SweepRunner second({manifest});
    build(second);
    SweepReport run2 = second.run();
    EXPECT_EQ(run2.skippedCount(), 2u); // healthy points not re-simulated
    EXPECT_EQ(run2.failedCount(), 2u);  // still-broken points re-tried
    EXPECT_EQ(simulated, 4); // only the invalid-config attempt repeats

    std::remove(trace.c_str());
}

} // namespace
} // namespace rampage
