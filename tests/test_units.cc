/**
 * @file
 * Unit tests for util/units.hh parsing and formatting.
 */

#include <gtest/gtest.h>

#include "util/types.hh"
#include "util/units.hh"

namespace rampage
{
namespace
{

TEST(Units, ParseByteSizePlain)
{
    EXPECT_EQ(parseByteSize("128"), 128u);
    EXPECT_EQ(parseByteSize("128B"), 128u);
    EXPECT_EQ(parseByteSize("0"), 0u);
}

TEST(Units, ParseByteSizeSuffixes)
{
    EXPECT_EQ(parseByteSize("4KB"), 4096u);
    EXPECT_EQ(parseByteSize("4kb"), 4096u);
    EXPECT_EQ(parseByteSize("4KiB"), 4096u);
    EXPECT_EQ(parseByteSize("1MB"), mib);
    EXPECT_EQ(parseByteSize("2GB"), 2 * gib);
    EXPECT_EQ(parseByteSize("4.125MB"), 4 * mib + 128 * kib);
}

TEST(Units, ParseFrequency)
{
    EXPECT_EQ(parseFrequency("200MHz"), 200'000'000u);
    EXPECT_EQ(parseFrequency("4GHz"), 4'000'000'000u);
    EXPECT_EQ(parseFrequency("1000"), 1000u);
    EXPECT_EQ(parseFrequency("2.5GHz"), 2'500'000'000u);
}

TEST(Units, FormatByteSize)
{
    EXPECT_EQ(formatByteSize(128), "128B");
    EXPECT_EQ(formatByteSize(4096), "4KB");
    EXPECT_EQ(formatByteSize(4 * mib), "4MB");
    EXPECT_EQ(formatByteSize(4 * mib + 128 * kib), "4224KB");
    EXPECT_EQ(formatByteSize(3 * gib), "3GB");
}

TEST(Units, FormatFrequency)
{
    EXPECT_EQ(formatFrequency(200'000'000), "200MHz");
    EXPECT_EQ(formatFrequency(4'000'000'000ull), "4GHz");
    EXPECT_EQ(formatFrequency(500'000'000), "500MHz");
    EXPECT_EQ(formatFrequency(1234), "1234Hz");
}

TEST(Units, RoundTripSizes)
{
    for (std::uint64_t bytes : {128ull, 256ull, 4096ull, 4ull * mib})
        EXPECT_EQ(parseByteSize(formatByteSize(bytes)), bytes);
}

TEST(Units, CycleTime)
{
    // The paper's issue-rate sweep in picoseconds.
    EXPECT_EQ(cycleTimePs(200'000'000), 5000u);
    EXPECT_EQ(cycleTimePs(1'000'000'000), 1000u);
    EXPECT_EQ(cycleTimePs(4'000'000'000ull), 250u);
}

TEST(Units, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(psPerSec, 2), "1.00");
    EXPECT_EQ(formatSeconds(psPerSec / 2, 1), "0.5");
    EXPECT_EQ(formatSeconds(6'380'000'000'000ull, 2), "6.38");
}

} // namespace
} // namespace rampage
