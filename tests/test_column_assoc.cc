/**
 * @file
 * Unit and property tests for the column-associative cache (§3.2,
 * Agarwal & Pudar) and its integration behind the conventional
 * hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/column_assoc.hh"
#include "core/conventional.hh"
#include "core/sweep.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

TEST(ColumnAssoc, FirstTimeHit)
{
    ColumnAssocCache cache(1024, 32);
    bool rehash = false;
    EXPECT_FALSE(cache.access(0x100, false, rehash).hit);
    EXPECT_TRUE(cache.access(0x100, false, rehash).hit);
    EXPECT_FALSE(rehash) << "resident block must hit on first probe";
    EXPECT_EQ(cache.stats().firstHits, 1u);
}

TEST(ColumnAssoc, ConflictingPairCoexists)
{
    // 1 KB / 32 B => 32 sets; addresses 1 KB apart share a primary
    // set.  A direct-mapped cache ping-pongs; column-associativity
    // keeps both via the alternate set.
    ColumnAssocCache cache(1024, 32);
    bool rehash = false;
    cache.access(0x0000, false, rehash);
    cache.access(0x0400, false, rehash); // conflict: demotes 0x0000
    EXPECT_TRUE(cache.probe(0x0000));
    EXPECT_TRUE(cache.probe(0x0400));
    // Accessing the demoted block is a rehash hit with a swap.
    auto res = cache.access(0x0000, false, rehash);
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(rehash);
    EXPECT_EQ(cache.stats().rehashHits, 1u);
    // After the swap it hits first-time again.
    cache.access(0x0000, false, rehash);
    EXPECT_FALSE(rehash);
}

TEST(ColumnAssoc, RehashedOccupantReplacedInPlace)
{
    ColumnAssocCache cache(1024, 32);
    bool rehash = false;
    cache.access(0x0000, false, rehash); // primary set 0
    cache.access(0x0400, false, rehash); // 0x0000 demoted to alt set
    // 0x0000 now sits rehashed in set 16 (0 ^ 16).  An access whose
    // *primary* set is 16 finds a rehashed occupant: in-place replace
    // without a second probe.
    auto res = cache.access(0x0200, false, rehash); // primary set 16
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(rehash);
    EXPECT_TRUE(res.victimValid);
    EXPECT_EQ(res.victimAddr, 0x0000u);
    EXPECT_EQ(cache.stats().inPlaceReplacements, 1u);
}

TEST(ColumnAssoc, DirtyStateFollowsSwaps)
{
    ColumnAssocCache cache(1024, 32);
    bool rehash = false;
    cache.access(0x0000, true, rehash);  // dirty
    cache.access(0x0400, false, rehash); // demote dirty block
    auto res = cache.access(0x0000, false, rehash); // swap back
    EXPECT_TRUE(res.hit);
    // Evicting it eventually must report dirty.
    auto inv = cache.invalidate(0x0000);
    EXPECT_TRUE(inv.present);
    EXPECT_TRUE(inv.dirty);
    EXPECT_FALSE(cache.probe(0x0000));
}

TEST(ColumnAssoc, MissRateBetweenDirectMappedAndTwoWay)
{
    // The design's claim: close to 2-way miss rates at near
    // direct-mapped cost.  Random block traffic with reuse.
    Rng rng(41);
    std::vector<Addr> pool;
    for (int i = 0; i < 48; ++i)
        pool.push_back(rng.below(1 << 20) & ~Addr{31});

    CacheParams dm_params;
    dm_params.sizeBytes = 1024;
    dm_params.blockBytes = 32;
    dm_params.assoc = 1;
    SetAssocCache dm(dm_params);
    dm_params.assoc = 2;
    SetAssocCache two_way(dm_params);
    ColumnAssocCache column(1024, 32);

    Rng traffic(43);
    for (int i = 0; i < 20000; ++i) {
        Addr addr = pool[traffic.skewedBelow(pool.size(), 0.3, 0.8)];
        dm.access(addr, false);
        two_way.access(addr, false);
        bool rehash = false;
        column.access(addr, false, rehash);
    }
    EXPECT_LT(column.stats().misses, dm.stats().misses);
    // Within striking distance of 2-way (the published result).
    EXPECT_LT(column.stats().misses, 2 * two_way.stats().misses);
}

TEST(ColumnAssoc, ProbeConsistentUnderChurn)
{
    ColumnAssocCache cache(512, 32);
    Rng rng(47);
    for (int i = 0; i < 20000; ++i) {
        Addr addr = rng.below(1 << 16) & ~Addr{3};
        bool rehash = false;
        auto res = cache.access(addr, rng.chance(0.3), rehash);
        ASSERT_TRUE(cache.probe(addr));
        if (res.victimValid &&
            cache.blockAddr(res.victimAddr) != cache.blockAddr(addr)) {
            ASSERT_FALSE(cache.probe(res.victimAddr));
        }
    }
    EXPECT_EQ(cache.stats().hits() + cache.stats().misses, 20000u);
}

TEST(ColumnAssocHierarchy, IntegratesAndNames)
{
    ConventionalConfig cfg = baselineConfig(1'000'000'000ull, 1024);
    cfg.l2Style = ConventionalConfig::L2Style::ColumnAssoc;
    ConventionalHierarchy hier(cfg);
    EXPECT_EQ(hier.name(), "column-assoc L2");
    MemRef ref{0x10000000, RefKind::Load, 0};
    hier.access(ref);
    EXPECT_GE(hier.counts().l2Misses, 1u);
    EXPECT_GE(hier.columnStats().misses, 1u);
}

TEST(ColumnAssocHierarchy, FewerMissesThanDirectMapped)
{
    auto run = [](ConventionalConfig::L2Style style) {
        ConventionalConfig cfg = baselineConfig(1'000'000'000ull, 4096);
        cfg.l2Style = style;
        ConventionalHierarchy hier(cfg);
        Rng rng(11);
        std::vector<Addr> pages;
        for (int i = 0; i < 2500; ++i)
            pages.push_back(0x10000000 + rng.below(1 << 24));
        for (int round = 0; round < 4; ++round)
            for (Addr page : pages) {
                MemRef ref{page & ~Addr{3}, RefKind::Load, 0};
                hier.access(ref);
            }
        return hier.counts().l2Misses;
    };
    EXPECT_LT(run(ConventionalConfig::L2Style::ColumnAssoc),
              run(ConventionalConfig::L2Style::SetAssoc));
}

} // namespace
} // namespace rampage
