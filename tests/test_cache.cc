/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

CacheParams
params(std::uint64_t size, std::uint64_t block, unsigned assoc,
       ReplPolicy repl = ReplPolicy::LRU)
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = size;
    p.blockBytes = block;
    p.assoc = assoc;
    p.repl = repl;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache cache(params(1024, 32, 1));
    EXPECT_FALSE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x100, false).hit);
    // Same block, different offset.
    EXPECT_TRUE(cache.access(0x11f, false).hit);
    // Next block misses.
    EXPECT_FALSE(cache.access(0x120, false).hit);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, DirectMappedConflict)
{
    // 1 KB direct-mapped, 32 B blocks: addresses 1 KB apart conflict.
    SetAssocCache cache(params(1024, 32, 1));
    EXPECT_FALSE(cache.access(0x0, false).hit);
    auto res = cache.access(0x400, false);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.victimValid);
    EXPECT_EQ(res.victimAddr, 0x0u);
    EXPECT_FALSE(cache.access(0x0, false).hit); // evicted
}

TEST(Cache, TwoWayAbsorbsConflict)
{
    SetAssocCache cache(params(1024, 32, 2));
    cache.access(0x0, false);
    cache.access(0x400, false);
    EXPECT_TRUE(cache.access(0x0, false).hit);
    EXPECT_TRUE(cache.access(0x400, false).hit);
}

TEST(Cache, LruEvictsLeastRecent)
{
    // One set of 2 ways: fill A, B; touch A; C must evict B.
    SetAssocCache cache(params(64, 32, 2));
    cache.access(0x000, false); // A
    cache.access(0x100, false); // B
    cache.access(0x000, false); // touch A
    auto res = cache.access(0x200, false); // C
    EXPECT_TRUE(res.victimValid);
    EXPECT_EQ(res.victimAddr, 0x100u);
}

TEST(Cache, FifoEvictsOldestFill)
{
    SetAssocCache cache(params(64, 32, 2, ReplPolicy::FIFO));
    cache.access(0x000, false); // A filled first
    cache.access(0x100, false); // B
    cache.access(0x000, false); // touching A must not matter
    auto res = cache.access(0x200, false);
    EXPECT_TRUE(res.victimValid);
    EXPECT_EQ(res.victimAddr, 0x000u);
}

TEST(Cache, DirtyVictimReported)
{
    // 64 B / 32 B / direct-mapped => 2 sets, set = address bit 5.
    SetAssocCache cache(params(64, 32, 1));
    cache.access(0x000, true); // dirty fill, set 0
    auto res = cache.access(0x020, false); // set 1: no conflict
    EXPECT_FALSE(res.victimValid);
    res = cache.access(0x040, false); // set 0: evicts dirty 0x000
    EXPECT_TRUE(res.victimValid);
    EXPECT_TRUE(res.victimDirty);
    EXPECT_EQ(res.victimAddr, 0x000u);
    EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
}

TEST(Cache, WriteHitDirtiesBlock)
{
    SetAssocCache cache(params(64, 32, 1));
    cache.access(0x000, false);
    EXPECT_FALSE(cache.probeDirty(0x000));
    cache.access(0x004, true);
    EXPECT_TRUE(cache.probeDirty(0x01f));
}

TEST(Cache, InvalidateReportsDirtyState)
{
    SetAssocCache cache(params(64, 32, 1));
    cache.access(0x000, true);
    auto inv = cache.invalidate(0x000);
    EXPECT_TRUE(inv.present);
    EXPECT_TRUE(inv.dirty);
    EXPECT_FALSE(cache.probe(0x000));
    inv = cache.invalidate(0x000);
    EXPECT_FALSE(inv.present);
}

TEST(Cache, MarkCleanAndDirty)
{
    SetAssocCache cache(params(64, 32, 1));
    cache.access(0x000, true);
    cache.markClean(0x000);
    EXPECT_FALSE(cache.probeDirty(0x000));
    cache.markDirty(0x000);
    EXPECT_TRUE(cache.probeDirty(0x000));
    // No-ops on absent blocks.
    cache.markClean(0x999);
    cache.markDirty(0x999);
}

TEST(Cache, FlushAll)
{
    SetAssocCache cache(params(256, 32, 2));
    for (Addr a = 0; a < 256; a += 32)
        cache.access(a, false);
    EXPECT_EQ(cache.validBlocks(), 8u);
    cache.flushAll();
    EXPECT_EQ(cache.validBlocks(), 0u);
}

TEST(Cache, FullyAssociativeViaAssocZero)
{
    SetAssocCache cache(params(128, 32, 0));
    EXPECT_EQ(cache.numSets(), 1u);
    EXPECT_EQ(cache.ways(), 4u);
    // Addresses that would conflict in any set-indexed scheme coexist.
    cache.access(0x0000, false);
    cache.access(0x1000, false);
    cache.access(0x2000, false);
    cache.access(0x3000, false);
    EXPECT_TRUE(cache.probe(0x0000));
    EXPECT_TRUE(cache.probe(0x3000));
}

TEST(Cache, BlockAddr)
{
    SetAssocCache cache(params(1024, 128, 1));
    EXPECT_EQ(cache.blockAddr(0x17f), 0x100u);
    EXPECT_EQ(cache.blockAddr(0x100), 0x100u);
}

TEST(Cache, PaperGeometries)
{
    // The paper's L1: 16 KB direct-mapped, 32 B blocks => 512 sets.
    SetAssocCache l1(params(16 * kib, 32, 1));
    EXPECT_EQ(l1.numSets(), 512u);
    // The paper's L2: 4 MB direct-mapped at 128 B => 32 K sets.
    SetAssocCache l2(params(4 * mib, 128, 1));
    EXPECT_EQ(l2.numSets(), 32768u);
    // 2-way at 4 KB blocks => 512 sets.
    SetAssocCache two(params(4 * mib, 4096, 2, ReplPolicy::Random));
    EXPECT_EQ(two.numSets(), 512u);
}

TEST(Cache, StatsMissRatio)
{
    SetAssocCache cache(params(64, 32, 1));
    cache.access(0x000, false);
    cache.access(0x000, false);
    cache.access(0x000, false);
    cache.access(0x020, false);
    EXPECT_DOUBLE_EQ(cache.stats().missRatio(), 0.5);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses(), 0u);
}

// ----------------------------------------------------------------
// Property sweep: for every geometry and policy, a cache never holds
// more blocks than its capacity, hits are only for present blocks,
// and re-accessing the victim misses.
// ----------------------------------------------------------------

struct CacheSweepParam
{
    std::uint64_t size;
    std::uint64_t block;
    unsigned assoc;
    ReplPolicy repl;
};

class CacheSweep : public ::testing::TestWithParam<CacheSweepParam>
{
};

TEST_P(CacheSweep, RandomTrafficInvariants)
{
    const auto &p = GetParam();
    SetAssocCache cache(params(p.size, p.block, p.assoc, p.repl));
    SetAssocCache shadow(params(p.size, p.block, p.assoc, p.repl));
    Rng rng(99);

    std::uint64_t capacity = p.size / p.block;
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.below(8 * p.size);
        bool write = rng.chance(0.3);
        auto res = cache.access(addr, write);
        // Shadow with identical seed & sequence behaves identically
        // (model determinism).
        auto ref = shadow.access(addr, write);
        ASSERT_EQ(res.hit, ref.hit);
        ASSERT_EQ(res.victimValid, ref.victimValid);
        if (res.victimValid) {
            ASSERT_EQ(res.victimAddr, ref.victimAddr);
            // The victim is gone; the accessed block is present.
            if (cache.blockAddr(res.victimAddr) !=
                cache.blockAddr(addr)) {
                ASSERT_FALSE(cache.probe(res.victimAddr));
            }
        }
        ASSERT_TRUE(cache.probe(addr));
        ASSERT_LE(cache.validBlocks(), capacity);
    }
    EXPECT_EQ(cache.stats().accesses(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(
        CacheSweepParam{1024, 32, 1, ReplPolicy::LRU},
        CacheSweepParam{1024, 32, 2, ReplPolicy::LRU},
        CacheSweepParam{1024, 32, 2, ReplPolicy::Random},
        CacheSweepParam{1024, 32, 4, ReplPolicy::FIFO},
        CacheSweepParam{1024, 32, 0, ReplPolicy::LRU},
        CacheSweepParam{4096, 128, 1, ReplPolicy::LRU},
        CacheSweepParam{4096, 128, 2, ReplPolicy::Random},
        CacheSweepParam{16 * 1024, 32, 1, ReplPolicy::LRU},
        CacheSweepParam{8192, 256, 8, ReplPolicy::Random},
        CacheSweepParam{8192, 4096, 2, ReplPolicy::LRU}));

// Full associativity with LRU is optimal for a loop that fits the
// cache: cold misses only, while a direct-mapped cache of the same
// capacity suffers its conflicts.
TEST(Cache, FullAssociativityBeatsDirectMappedOnFittingLoop)
{
    std::vector<Addr> loop;
    Rng rng(5);
    for (int i = 0; i < 24; ++i)
        loop.push_back(rng.below(1 << 20) & ~Addr{31});

    SetAssocCache dm(params(1024, 32, 1));
    SetAssocCache fa(params(1024, 32, 0));
    for (int round = 0; round < 50; ++round) {
        for (Addr a : loop) {
            dm.access(a, false);
            fa.access(a, false);
        }
    }
    // 24 distinct blocks fit the 32-block FA cache: cold misses only.
    EXPECT_EQ(fa.stats().misses, 24u);
    EXPECT_GT(dm.stats().misses, fa.stats().misses);
}

} // namespace
} // namespace rampage
