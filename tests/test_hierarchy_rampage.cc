/**
 * @file
 * Behavioural tests for the RAMpage hierarchy (§2, §4.5): full
 * associativity of the SRAM main memory, pinned operating-system
 * reserve, TLB flush on page replacement, fault timing, and
 * deferrable transfer time for context-switch-on-miss.
 */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "core/paged.hh"
#include "core/sweep.hh"
#include "util/random.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

MemRef
load(Addr addr, Pid pid = 0)
{
    return MemRef{addr, RefKind::Load, pid};
}

MemRef
store(Addr addr, Pid pid = 0)
{
    return MemRef{addr, RefKind::Store, pid};
}

MemRef
fetch(Addr addr, Pid pid = 0)
{
    return MemRef{addr, RefKind::IFetch, pid};
}

/** A small RAMpage system for fast targeted tests. */
RampageConfig
smallConfig(std::uint64_t page_bytes = 1024, bool switch_on_miss = false)
{
    RampageConfig cfg = rampageConfig(oneGhz, page_bytes, switch_on_miss);
    cfg.pager.baseSramBytes = 64 * kib;
    cfg.pager.osFixedBytes = 12 * kib;
    return cfg;
}

TEST(Rampage, FirstAccessFaultsAndPaysPageTransfer)
{
    auto hier_owner = makeHierarchy(smallConfig(1024));
    PagedHierarchy &hier = asPaged(*hier_owner);
    auto out = hier.access(load(0x10000000));
    EXPECT_TRUE(out.pageFault);
    const EventCounts &c = hier.counts();
    EXPECT_EQ(c.tlbMisses, 1u);
    EXPECT_EQ(c.l2Misses, 1u);
    EXPECT_EQ(c.dramReads, 1u);
    // One 1 KB page read: 50 ns + 512 beats = 690 ns.
    EXPECT_EQ(c.dramPs, 690'000u);
    // Blocking mode: nothing deferred.
    EXPECT_EQ(out.deferPs, 0u);
    EXPECT_GT(out.cpuPs, 690'000u);
}

TEST(Rampage, ResidentPageHitsWithoutDram)
{
    auto hier_owner = makeHierarchy(smallConfig(1024));
    PagedHierarchy &hier = asPaged(*hier_owner);
    hier.access(load(0x10000000));
    Tick dram_before = hier.counts().dramPs;
    auto out = hier.access(load(0x10000010)); // same L1 block
    EXPECT_EQ(out.cpuPs, 0u); // pipelined data hit
    // Different L1 block, same resident page: 12-cycle SRAM access.
    out = hier.access(load(0x10000040));
    EXPECT_EQ(out.cpuPs, 12'000u);
    EXPECT_EQ(hier.counts().dramPs, dram_before);
}

TEST(Rampage, TlbMissOnResidentPageNeverTouchesDram)
{
    // §2.3: with the table pinned, a TLB miss is serviced without
    // going to DRAM unless the page itself has faulted out.
    RampageConfig cfg = smallConfig(1024);
    cfg.common.tlb.entries = 4; // tiny TLB forces misses
    auto hier_owner = makeHierarchy(cfg);
    PagedHierarchy &hier = asPaged(*hier_owner);
    // Touch 8 pages (all fit in SRAM), thrashing the 4-entry TLB.
    for (Addr page = 0; page < 8; ++page)
        hier.access(load(0x10000000 + page * 1024));
    Tick dram_after_faults = hier.counts().dramPs;
    std::uint64_t faults = hier.counts().l2Misses;
    for (int round = 0; round < 5; ++round)
        for (Addr page = 0; page < 8; ++page)
            hier.access(load(0x10000000 + page * 1024));
    EXPECT_GT(hier.counts().tlbMisses, 8u); // TLB thrashed
    EXPECT_EQ(hier.counts().l2Misses, faults); // no new faults
    EXPECT_EQ(hier.counts().dramPs, dram_after_faults); // no DRAM
}

TEST(Rampage, FullAssociativityAbsorbsAnyLayout)
{
    // Pages that would conflict in any set-indexed cache coexist in
    // the paged SRAM: touching N <= capacity pages repeatedly faults
    // exactly N times.
    auto hier_owner = makeHierarchy(smallConfig(1024));
    PagedHierarchy &hier = asPaged(*hier_owner);
    std::uint64_t user = hier.pager().userFrames();
    Rng rng(3);
    std::vector<Addr> pages;
    for (std::uint64_t i = 0; i < user; ++i)
        pages.push_back(0x10000000 + rng.below(1 << 28) * 1024);
    for (int round = 0; round < 5; ++round)
        for (Addr page : pages)
            hier.access(load(page));
    EXPECT_LE(hier.counts().l2Misses, pages.size());
}

TEST(Rampage, EvictionFlushesTlbEntry)
{
    // §2.3: "If a page is replaced from the SRAM main memory, its
    // entry (if it has one) in the TLB is flushed."
    auto hier_owner = makeHierarchy(smallConfig(1024));
    PagedHierarchy &hier = asPaged(*hier_owner);
    std::uint64_t user = hier.pager().userFrames();
    // Fill SRAM, then touch one more page to force an eviction.
    for (std::uint64_t i = 0; i <= user; ++i)
        hier.access(load(0x10000000 + i * 1024));
    EXPECT_GT(hier.tlb().stats().flushes, 0u);
}

TEST(Rampage, EvictedPageFaultsAgainAndStaysCoherent)
{
    auto hier_owner = makeHierarchy(smallConfig(1024));
    PagedHierarchy &hier = asPaged(*hier_owner);
    std::uint64_t user = hier.pager().userFrames();
    hier.access(store(0x10000000)); // page A, dirtied in L1
    // Evict A by sweeping more pages than the SRAM holds.
    for (std::uint64_t i = 1; i <= user + 4; ++i)
        hier.access(load(0x10000000 + i * 1024));
    std::uint64_t dirty_wb = hier.counts().dramWrites;
    // A's dirty L1 data must have been flushed with the page.
    EXPECT_GE(dirty_wb, 1u);
    // Re-touching A faults it back in.
    std::uint64_t faults = hier.counts().l2Misses;
    hier.access(load(0x10000000));
    EXPECT_EQ(hier.counts().l2Misses, faults + 1);
}

TEST(Rampage, OsRegionBypassesTlbAndNeverFaults)
{
    auto hier_owner = makeHierarchy(smallConfig(1024));
    PagedHierarchy &hier = asPaged(*hier_owner);
    Addr os_code = hier.pager().osVirtBase();
    std::uint64_t tlb_misses = hier.counts().tlbMisses;
    auto out = hier.access(fetch(os_code, osPid));
    EXPECT_FALSE(out.pageFault);
    EXPECT_EQ(hier.counts().tlbMisses, tlb_misses);
    EXPECT_EQ(hier.counts().dramReads, 0u);
}

TEST(Rampage, PinnedReserveSurvivesHeavyChurn)
{
    // The OS frames must never be chosen as victims: handler code
    // keeps hitting after arbitrarily heavy user paging.
    RampageConfig cfg = smallConfig(512);
    auto hier_owner = makeHierarchy(cfg);
    PagedHierarchy &hier = asPaged(*hier_owner);
    Rng rng(7);
    for (int i = 0; i < 20000; ++i)
        hier.access(load(0x10000000 + rng.below(1 << 22)));
    // Handler fetches still resolve below the pinned boundary.
    Addr os_phys = hier.pager().osPhysAddr(hier.pager().osVirtBase());
    EXPECT_LT(os_phys,
              hier.pager().osFrames() * hier.pager().pageBytes());
    // And the table still resolves every resident page: spot check.
    auto look = hier.pager().lookup(0, (0x10000000 >> 9));
    (void)look; // structural: lookup itself must not crash
}

TEST(Rampage, SwitchOnMissDefersTransferTime)
{
    auto blocking_owner = makeHierarchy(smallConfig(1024, false));
    PagedHierarchy &blocking = asPaged(*blocking_owner);
    auto switching_owner = makeHierarchy(smallConfig(1024, true));
    PagedHierarchy &switching = asPaged(*switching_owner);
    auto out_b = blocking.access(load(0x10000000));
    auto out_s = switching.access(load(0x10000000));
    EXPECT_TRUE(out_s.pageFault);
    // The page-read transfer (690 ns) is deferrable under
    // switch-on-miss; total work is identical.
    EXPECT_EQ(out_s.deferPs, 690'000u);
    EXPECT_EQ(out_b.cpuPs, out_s.cpuPs + out_s.deferPs);
}

TEST(Rampage, DirtyEvictionDefersWriteAndRead)
{
    RampageConfig cfg = smallConfig(1024, true);
    auto hier_owner = makeHierarchy(cfg);
    PagedHierarchy &hier = asPaged(*hier_owner);
    std::uint64_t user = hier.pager().userFrames();
    for (std::uint64_t i = 0; i < user; ++i)
        hier.access(store(0x10000000 + i * 1024));
    // All pages dirty (write-allocate leaves L1 dirty; flush on evict
    // marks the page).  The next fault defers write + read.
    auto out = hier.access(load(0x20000000));
    ASSERT_TRUE(out.pageFault);
    EXPECT_EQ(out.deferPs, 2 * 690'000u);
}

TEST(Rampage, BreakdownMatchesEventTotals)
{
    auto hier_owner = makeHierarchy(smallConfig(1024));
    PagedHierarchy &hier = asPaged(*hier_owner);
    Rng rng(9);
    Tick accumulated = 0;
    for (int i = 0; i < 5000; ++i) {
        MemRef ref;
        ref.vaddr = 0x10000000 + rng.below(1 << 20);
        ref.kind = rng.chance(0.7) ? RefKind::IFetch : RefKind::Load;
        if (ref.isInstr())
            ref.vaddr = 0x400000 + rng.below(1 << 14) * 4;
        ref.pid = 0;
        auto out = hier.access(ref);
        accumulated += out.cpuPs + out.deferPs;
    }
    // The per-access times must sum to the priced event totals.
    EXPECT_EQ(accumulated, hier.totalPs(oneGhz));
}

TEST(Rampage, PageSizeSweepConstructs)
{
    for (std::uint64_t page : blockSizeSweep()) {
        auto hier_owner = makeHierarchy(rampageConfig(oneGhz, page));
        PagedHierarchy &hier = asPaged(*hier_owner);
        EXPECT_EQ(hier.pager().pageBytes(), page);
        EXPECT_EQ(hier.l2Name(), "SRAM MM");
    }
}

TEST(Rampage, NameReflectsMode)
{
    EXPECT_EQ(makeHierarchy(smallConfig(1024, false))->name(),
              "RAMpage");
    EXPECT_EQ(makeHierarchy(smallConfig(1024, true))->name(),
              "RAMpage+switch");
}

} // namespace
} // namespace rampage
