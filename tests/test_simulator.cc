/**
 * @file
 * Tests for the simulation driver: blocking runs, context-switch
 * trace insertion, and the timing-coupled switch-on-miss schedule.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/synthetic.hh"

namespace rampage
{
namespace
{

constexpr std::uint64_t oneGhz = 1'000'000'000ull;

std::vector<std::unique_ptr<TraceSource>>
tinyWorkload(int programs = 3)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (int i = 0; i < programs; ++i) {
        ProgramProfile profile;
        profile.name = "tiny" + std::to_string(i);
        profile.seed = 100 + i;
        profile.heapBytes = 256 * kib;
        sources.push_back(std::make_unique<SyntheticProgram>(
            profile, static_cast<Pid>(i)));
    }
    return sources;
}

SimConfig
tinySim(std::uint64_t refs = 60'000, std::uint64_t quantum = 10'000)
{
    SimConfig sim;
    sim.maxRefs = refs;
    sim.quantumRefs = quantum;
    return sim;
}

TEST(Simulator, BlockingRunIsDeterministic)
{
    auto run = [] {
        auto hier = makeHierarchy(baselineConfig(oneGhz, 128));
        Simulator sim(*hier, tinyWorkload(), tinySim());
        return sim.run();
    };
    SimResult a = run();
    SimResult b = run();
    EXPECT_EQ(a.elapsedPs, b.elapsedPs);
    EXPECT_EQ(a.counts.dramReads, b.counts.dramReads);
    EXPECT_EQ(a.counts.tlbMisses, b.counts.tlbMisses);
}

TEST(Simulator, ProcessesExactlyMaxRefs)
{
    auto hier = makeHierarchy(baselineConfig(oneGhz, 128));
    Simulator sim(*hier, tinyWorkload(), tinySim(12'345));
    SimResult result = sim.run();
    EXPECT_EQ(result.counts.traceRefs, 12'345u);
}

TEST(Simulator, ContextSwitchTracePerSlice)
{
    auto hier = makeHierarchy(baselineConfig(oneGhz, 128));
    Simulator sim(*hier, tinyWorkload(), tinySim(60'000, 10'000));
    SimResult result = sim.run();
    // 6 slices -> 6 context-switch traces (first slice included).
    EXPECT_EQ(result.counts.contextSwitches, 6u);
}

TEST(Simulator, SwitchTraceCanBeDisabled)
{
    auto hier = makeHierarchy(baselineConfig(oneGhz, 128));
    SimConfig cfg = tinySim();
    cfg.insertSwitchTrace = false;
    Simulator sim(*hier, tinyWorkload(), cfg);
    SimResult result = sim.run();
    EXPECT_EQ(result.counts.contextSwitches, 0u);
}

TEST(Simulator, ElapsedMatchesRecostAtSameRate)
{
    // For blocking runs, the timeline total equals the priced event
    // counts at the run's own issue rate — the Table 3 re-costing is
    // exact, not approximate.
    auto hier = makeHierarchy(baselineConfig(oneGhz, 512));
    Simulator sim(*hier, tinyWorkload(), tinySim());
    SimResult result = sim.run();
    EXPECT_EQ(result.elapsedPs, totalTimePs(result.counts, oneGhz));
}

TEST(Simulator, RampageBlockingElapsedMatchesRecost)
{
    RampageConfig cfg = rampageConfig(oneGhz, 1024);
    cfg.pager.baseSramBytes = 256 * kib;
    auto hier = makeHierarchy(cfg);
    Simulator sim(*hier, tinyWorkload(), tinySim());
    SimResult result = sim.run();
    EXPECT_EQ(result.elapsedPs, totalTimePs(result.counts, oneGhz));
}

TEST(Simulator, SwitchOnMissOverlapsTransfers)
{
    // With several processes, switch-on-miss overlaps page transfers
    // with execution: elapsed time is at most the blocking time and
    // strictly less than cycle-time + full DRAM time.
    // Moderate fault pressure: working sets mostly fit, so the
    // channel is not saturated and overlap can pay off.
    auto run = [](bool switch_on_miss) {
        RampageConfig cfg = rampageConfig(4'000'000'000ull, 4096,
                                          switch_on_miss);
        cfg.pager.baseSramBytes = 1 * mib;
        auto hier = makeHierarchy(cfg);
        SimConfig sim = tinySim(200'000, 25'000);
        sim.switchOnMiss = switch_on_miss;
        Simulator driver(*hier, tinyWorkload(4), sim);
        return driver.run();
    };
    SimResult blocking = run(false);
    SimResult switching = run(true);
    EXPECT_GT(switching.sched.missSwitches, 0u);
    // At 4 GHz with big pages, overlap wins (the paper's §5.4 claim).
    EXPECT_LT(switching.elapsedPs, blocking.elapsedPs);
}

TEST(Simulator, SwitchOnMissSingleProcessStalls)
{
    // With one process there is nobody to switch to: every fault
    // stalls the CPU for the transfer, so elapsed time ~ blocking.
    RampageConfig cfg = rampageConfig(oneGhz, 1024, true);
    cfg.pager.baseSramBytes = 128 * kib;
    auto hier = makeHierarchy(cfg);
    SimConfig sim = tinySim(30'000, 10'000);
    sim.switchOnMiss = true;
    Simulator driver(*hier, tinyWorkload(1), sim);
    SimResult result = driver.run();
    EXPECT_GT(result.sched.stalls, 0u);
    EXPECT_GT(result.stallPs, 0u);
    EXPECT_EQ(result.stallPs, result.sched.stallTime);
}

TEST(Simulator, ResultMetadata)
{
    auto hier = makeHierarchy(twoWayConfig(oneGhz, 256));
    Simulator sim(*hier, tinyWorkload(), tinySim(5'000, 1'000));
    SimResult result = sim.run();
    EXPECT_EQ(result.systemName, "2-way L2");
    EXPECT_EQ(result.issueHz, oneGhz);
    EXPECT_NEAR(result.seconds(),
                static_cast<double>(result.elapsedPs) / 1e12, 1e-15);
}

TEST(Simulator, ElapsedGrowsWithRefs)
{
    auto elapsed = [](std::uint64_t refs) {
        auto hier = makeHierarchy(baselineConfig(oneGhz, 128));
        Simulator sim(*hier, tinyWorkload(), tinySim(refs));
        return sim.run().elapsedPs;
    };
    EXPECT_LT(elapsed(10'000), elapsed(40'000));
}

} // namespace
} // namespace rampage
