/**
 * @file
 * Configuration-validation tests: every unusable configuration must
 * fail fast by throwing ConfigError with a diagnostic — never crash,
 * silently mis-simulate, or kill the process (process exit is the CLI
 * handlers' job, see util/error.hh).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/column_assoc.hh"
#include "core/conventional.hh"
#include "core/factory.hh"
#include "core/paged.hh"
#include "core/sweep.hh"
#include "os/page_store.hh"
#include "tlb/tlb.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace rampage
{
namespace
{

/** Assert `body` throws ConfigError whose message mentions `text`. */
template <typename Body>
void
expectConfigError(Body &&body, const std::string &text)
{
    try {
        body();
        FAIL() << "expected ConfigError containing '" << text << "'";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(text), std::string::npos)
            << "diagnostic was: " << e.what();
    }
}

TEST(ConfigValidation, CacheBlockMustBePowerOfTwo)
{
    CacheParams params;
    params.blockBytes = 48;
    expectConfigError([&] { SetAssocCache cache(params); },
                      "power of two");
}

TEST(ConfigValidation, CacheSizeMustBeBlockMultiple)
{
    CacheParams params;
    params.sizeBytes = 1000;
    params.blockBytes = 64;
    expectConfigError([&] { SetAssocCache cache(params); }, "multiple");
}

TEST(ConfigValidation, CacheAssociativityBounded)
{
    CacheParams params;
    params.sizeBytes = 128;
    params.blockBytes = 32;
    params.assoc = 8; // only 4 blocks exist
    expectConfigError([&] { SetAssocCache cache(params); },
                      "associativity");
}

TEST(ConfigValidation, TlbGeometry)
{
    TlbParams params;
    params.entries = 64;
    params.assoc = 48; // does not divide 64
    EXPECT_THROW({ Tlb tlb(params); }, ConfigError)
        << "incompatible TLB geometry must be rejected";
}

TEST(ConfigValidation, PagerPageSizePowerOfTwo)
{
    PageStoreParams params;
    params.pageBytes = 3000;
    expectConfigError([&] { PageStore pager(params); }, "power of two");
}

TEST(ConfigValidation, PagerReserveCannotSwallowSram)
{
    // The table (~20 B/frame) plus a 12 KB fixed image cannot fit in
    // an SRAM this small: 4 KiB = 32 frames of 128 B, and the fixed
    // image alone needs 96 frames.
    PageStoreParams params;
    params.pageBytes = 128;
    params.baseSramBytes = 4 * kib;
    params.osFixedBytes = 12 * kib;
    expectConfigError([&] { PageStore pager(params); }, "reserve");
}

TEST(ConfigValidation, RampagePageAtLeastL1Block)
{
    RampageConfig cfg = rampageConfig(1'000'000'000ull, 1024);
    cfg.pager.pageBytes = 16; // below the 32 B L1 block
    EXPECT_THROW({ makeHierarchy(cfg); }, ConfigError);
}

TEST(ConfigValidation, RampagePageAtMostDramPage)
{
    RampageConfig cfg = rampageConfig(1'000'000'000ull, 8192);
    expectConfigError([&] { makeHierarchy(cfg); }, "DRAM page");
}

TEST(ConfigValidation, ConventionalL2BlockAtLeastL1Block)
{
    ConventionalConfig cfg = baselineConfig(1'000'000'000ull, 16);
    expectConfigError([&] { ConventionalHierarchy hier(cfg); },
                      "smaller");
}

TEST(ConfigValidation, VictimCacheBehindColumnAssocRejected)
{
    ConventionalConfig cfg = baselineConfig(1'000'000'000ull, 1024);
    cfg.l2Style = ConventionalConfig::L2Style::ColumnAssoc;
    cfg.victimEntries = 4;
    expectConfigError([&] { ConventionalHierarchy hier(cfg); },
                      "victim");
}

TEST(ConfigValidation, ColumnAssocNeedsTwoSets)
{
    expectConfigError([&] { ColumnAssocCache cache(32, 32); },
                      "two sets");
}

TEST(ConfigValidation, MalformedQuantitiesThrow)
{
    expectConfigError([&] { parseByteSize("twelve"); }, "cannot parse");
    expectConfigError([&] { parseByteSize("4XB"); }, "suffix");
    expectConfigError([&] { parseFrequency("-3GHz"); }, "positive");
}

// ------------------------------------------------------------------
// The invalid classes the fuzzer's hostile-mutation probe drills
// (check/config_gen.cc mutateHostile): one explicit regression test
// per class, each pinning that validation rejects with a diagnostic
// that names the offending field or constraint.  The standby-list
// bound was in fact *discovered* by this probe — it used to escape as
// an assertion failure deep in page_replacement.cc.

/** The paged baseline each hostile-class test corrupts one field of. */
HierarchyConfig
hostilePagedBase()
{
    return HierarchyConfig(rampageConfig(1'000'000'000ull, 1024));
}

HierarchyConfig
hostileConvBase()
{
    return HierarchyConfig(baselineConfig(1'000'000'000ull, 128));
}

TEST(HostileConfigClasses, L1BlockGeometry)
{
    HierarchyConfig bad = hostilePagedBase();
    bad.common().l1BlockBytes = 48; // non-power-of-two
    expectConfigError([&] { makeHierarchy(bad); }, "power of two");

    bad = hostilePagedBase();
    bad.common().l1BlockBytes = 0;
    expectConfigError([&] { makeHierarchy(bad); }, "power of two");

    bad = hostileConvBase();
    bad.common().l1SizeBytes = bad.common().l1BlockBytes * 5 + 1;
    expectConfigError([&] { makeHierarchy(bad); },
                      "multiple of the block");

    bad = hostileConvBase();
    bad.common().l1Assoc = 1u << 30;
    expectConfigError([&] { makeHierarchy(bad); }, "associativity");
}

TEST(HostileConfigClasses, TlbGeometry)
{
    HierarchyConfig bad = hostilePagedBase();
    bad.common().tlb.entries = 0;
    expectConfigError([&] { makeHierarchy(bad); },
                      "at least one entry");

    bad = hostilePagedBase();
    bad.common().tlb.entries = 64;
    bad.common().tlb.assoc = 3; // does not divide the entries
    expectConfigError([&] { makeHierarchy(bad); }, "incompatible");

    bad = hostileConvBase();
    bad.common().tlb.entries = 48;
    bad.common().tlb.assoc = 4; // 12 sets: not a power of two
    expectConfigError([&] { makeHierarchy(bad); }, "set count");
}

TEST(HostileConfigClasses, ConventionalL2Geometry)
{
    HierarchyConfig bad = hostileConvBase();
    bad.conventional.l2BlockBytes = bad.common().l1BlockBytes / 2;
    expectConfigError([&] { makeHierarchy(bad); }, "smaller");

    bad = hostileConvBase();
    bad.conventional.l2SizeBytes =
        bad.conventional.l2BlockBytes * 7 + 3;
    expectConfigError([&] { makeHierarchy(bad); }, "multiple");

    bad = hostileConvBase();
    bad.conventional.l2Style = ConventionalConfig::L2Style::ColumnAssoc;
    bad.conventional.victimEntries = 4;
    expectConfigError([&] { makeHierarchy(bad); }, "victim");
}

TEST(HostileConfigClasses, PagerFrameGeometry)
{
    HierarchyConfig bad = hostilePagedBase();
    bad.paged.pager.pageBytes = 384;
    expectConfigError([&] { makeHierarchy(bad); },
                      "SRAM page size must be a power of two");

    bad = hostilePagedBase();
    bad.paged.pager.pageBytes = bad.common().dramPageBytes * 2;
    expectConfigError([&] { makeHierarchy(bad); },
                      "larger than the DRAM page");

    bad = hostilePagedBase();
    bad.paged.pager.baseSramBytes =
        bad.paged.pager.pageBytes * 3 + 1;
    expectConfigError([&] { makeHierarchy(bad); },
                      "multiple of the page size");
}

TEST(HostileConfigClasses, PerPidPageSizePolicy)
{
    HierarchyConfig bad = hostilePagedBase();
    bad.paged.pager.defaultPageBytes =
        bad.paged.pager.pageBytes * 3; // non-power-of-two multiple
    expectConfigError([&] { makeHierarchy(bad); },
                      "invalid for base frame");

    bad = hostilePagedBase();
    bad.paged.pager.defaultPageBytes =
        bad.paged.pager.pageBytes / 2; // below the base frame
    expectConfigError([&] { makeHierarchy(bad); },
                      "invalid for base frame");
}

TEST(HostileConfigClasses, OsReserveAndLayout)
{
    HierarchyConfig bad = hostilePagedBase();
    bad.paged.pager.osFixedBytes = std::uint64_t{1} << 62;
    expectConfigError([&] { makeHierarchy(bad); },
                      "operating-system reserve");

    bad = hostilePagedBase();
    bad.paged.pager.osVirtBase =
        bad.common().handlerLayout.codeBase + 0x100;
    expectConfigError([&] { makeHierarchy(bad); },
                      "handler code base");
}

TEST(HostileConfigClasses, StandbyListBound)
{
    // The generator-discovered gap: a standby list at least as large
    // as the evictable SRAM used to trip an assertion (InternalError)
    // inside PageReplacement instead of failing validation.
    HierarchyConfig bad = hostilePagedBase();
    bad.paged.pager.repl = PageReplKind::Standby;
    bad.paged.pager.standbyPages = std::uint64_t{1} << 62;
    expectConfigError([&] { makeHierarchy(bad); }, "standbyPages");
}

TEST(ConfigValidation, ErrorsCarryTheirCategory)
{
    try {
        parseByteSize("twelve");
        FAIL() << "expected ConfigError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
        EXPECT_STREQ(errorCategoryName(e.category()), "config");
    }
}

TEST(ConfigValidation, AssertionFailuresAreInternalErrors)
{
    // RAMPAGE_ASSERT raises InternalError (a simulator bug, not a
    // user error) with file/line context.
    try {
        cycleTimePs(0);
        FAIL() << "expected InternalError";
    } catch (const InternalError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Internal);
        EXPECT_NE(std::string(e.what()).find("units.cc"),
                  std::string::npos);
    }
}

} // namespace
} // namespace rampage
