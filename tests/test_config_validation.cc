/**
 * @file
 * Configuration-validation tests: every unusable configuration must
 * fail fast through fatal() (exit code 1) with a diagnostic, never
 * crash or silently mis-simulate.  Uses gtest death tests.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/column_assoc.hh"
#include "core/conventional.hh"
#include "core/rampage.hh"
#include "core/sweep.hh"
#include "os/pager.hh"
#include "tlb/tlb.hh"
#include "util/units.hh"

namespace rampage
{
namespace
{

using ::testing::ExitedWithCode;

TEST(ConfigValidation, CacheBlockMustBePowerOfTwo)
{
    CacheParams params;
    params.blockBytes = 48;
    EXPECT_EXIT({ SetAssocCache cache(params); },
                ExitedWithCode(1), "power of two");
}

TEST(ConfigValidation, CacheSizeMustBeBlockMultiple)
{
    CacheParams params;
    params.sizeBytes = 1000;
    params.blockBytes = 64;
    EXPECT_EXIT({ SetAssocCache cache(params); },
                ExitedWithCode(1), "multiple");
}

TEST(ConfigValidation, CacheAssociativityBounded)
{
    CacheParams params;
    params.sizeBytes = 128;
    params.blockBytes = 32;
    params.assoc = 8; // only 4 blocks exist
    EXPECT_EXIT({ SetAssocCache cache(params); },
                ExitedWithCode(1), "associativity");
}

TEST(ConfigValidation, TlbGeometry)
{
    TlbParams params;
    params.entries = 64;
    params.assoc = 48; // does not divide 64
    EXPECT_EXIT({ Tlb tlb(params); }, ExitedWithCode(1), "")
        << "incompatible TLB geometry must be fatal";
}

TEST(ConfigValidation, PagerPageSizePowerOfTwo)
{
    PagerParams params;
    params.pageBytes = 3000;
    EXPECT_EXIT({ SramPager pager(params); },
                ExitedWithCode(1), "power of two");
}

TEST(ConfigValidation, PagerReserveCannotSwallowSram)
{
    // The table (~20 B/frame) plus a 12 KB fixed image cannot fit in
    // an SRAM this small: 4 KiB = 32 frames of 128 B, and the fixed
    // image alone needs 96 frames.
    PagerParams params;
    params.pageBytes = 128;
    params.baseSramBytes = 4 * kib;
    params.osFixedBytes = 12 * kib;
    EXPECT_EXIT({ SramPager pager(params); },
                ExitedWithCode(1), "reserve");
}

TEST(ConfigValidation, RampagePageAtLeastL1Block)
{
    RampageConfig cfg = rampageConfig(1'000'000'000ull, 1024);
    cfg.pager.pageBytes = 16; // below the 32 B L1 block
    EXPECT_EXIT({ RampageHierarchy hier(cfg); },
                ExitedWithCode(1), "");
}

TEST(ConfigValidation, RampagePageAtMostDramPage)
{
    RampageConfig cfg = rampageConfig(1'000'000'000ull, 8192);
    EXPECT_EXIT({ RampageHierarchy hier(cfg); },
                ExitedWithCode(1), "DRAM page");
}

TEST(ConfigValidation, ConventionalL2BlockAtLeastL1Block)
{
    ConventionalConfig cfg = baselineConfig(1'000'000'000ull, 16);
    EXPECT_EXIT({ ConventionalHierarchy hier(cfg); },
                ExitedWithCode(1), "smaller");
}

TEST(ConfigValidation, VictimCacheBehindColumnAssocRejected)
{
    ConventionalConfig cfg = baselineConfig(1'000'000'000ull, 1024);
    cfg.l2Style = ConventionalConfig::L2Style::ColumnAssoc;
    cfg.victimEntries = 4;
    EXPECT_EXIT({ ConventionalHierarchy hier(cfg); },
                ExitedWithCode(1), "victim");
}

TEST(ConfigValidation, ColumnAssocNeedsTwoSets)
{
    EXPECT_EXIT({ ColumnAssocCache cache(32, 32); },
                ExitedWithCode(1), "two sets");
}

TEST(ConfigValidation, MalformedQuantitiesAreFatal)
{
    EXPECT_EXIT({ parseByteSize("twelve"); }, ExitedWithCode(1),
                "cannot parse");
    EXPECT_EXIT({ parseByteSize("4XB"); }, ExitedWithCode(1), "suffix");
    EXPECT_EXIT({ parseFrequency("-3GHz"); }, ExitedWithCode(1),
                "positive");
}

} // namespace
} // namespace rampage
