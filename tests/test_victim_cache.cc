/**
 * @file
 * Unit tests for the victim cache (§3.2 ablation hardware).
 */

#include <gtest/gtest.h>

#include "cache/victim_cache.hh"

namespace rampage
{
namespace
{

TEST(VictimCache, InsertThenExtract)
{
    VictimCache vc(4, 128);
    EXPECT_FALSE(vc.insert(0x100, false).valid);
    auto hit = vc.extract(0x100);
    EXPECT_TRUE(hit.hit);
    EXPECT_FALSE(hit.dirty);
    // Extraction removes the entry.
    EXPECT_FALSE(vc.extract(0x100).hit);
}

TEST(VictimCache, DirtyStatePreserved)
{
    VictimCache vc(2, 128);
    vc.insert(0x200, true);
    auto hit = vc.extract(0x280); // same 128 B block? no - different
    EXPECT_FALSE(hit.hit);
    hit = vc.extract(0x27f); // same block as 0x200
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.dirty);
}

TEST(VictimCache, BlockAlignment)
{
    VictimCache vc(2, 128);
    vc.insert(0x17f, false);
    EXPECT_TRUE(vc.probe(0x100));
    EXPECT_TRUE(vc.extract(0x100).hit);
}

TEST(VictimCache, FifoDisplacement)
{
    VictimCache vc(2, 128);
    EXPECT_FALSE(vc.insert(0x000, false).valid);
    EXPECT_FALSE(vc.insert(0x080, true).valid);
    auto out = vc.insert(0x100, false); // displaces oldest (0x000)
    EXPECT_TRUE(out.valid);
    EXPECT_EQ(out.addr, 0x000u);
    EXPECT_FALSE(out.dirty);
    EXPECT_FALSE(vc.probe(0x000));
    EXPECT_TRUE(vc.probe(0x080));

    out = vc.insert(0x180, false); // displaces 0x080 (dirty)
    EXPECT_TRUE(out.valid);
    EXPECT_EQ(out.addr, 0x080u);
    EXPECT_TRUE(out.dirty);
}

TEST(VictimCache, ReinsertRefreshesInsteadOfDuplicating)
{
    VictimCache vc(2, 128);
    vc.insert(0x000, false);
    vc.insert(0x080, false);
    // Re-inserting 0x000 refreshes it (now newest) and merges dirty.
    EXPECT_FALSE(vc.insert(0x000, true).valid);
    auto out = vc.insert(0x100, false); // should displace 0x080
    EXPECT_TRUE(out.valid);
    EXPECT_EQ(out.addr, 0x080u);
    auto hit = vc.extract(0x000);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.dirty);
}

TEST(VictimCache, HitStatistics)
{
    VictimCache vc(2, 128);
    vc.insert(0x000, false);
    vc.extract(0x000);
    vc.extract(0x080);
    EXPECT_EQ(vc.hits(), 1u);
    EXPECT_EQ(vc.lookups(), 2u);
}

TEST(VictimCache, Flush)
{
    VictimCache vc(2, 128);
    vc.insert(0x000, true);
    vc.flush();
    EXPECT_FALSE(vc.probe(0x000));
}

} // namespace
} // namespace rampage
