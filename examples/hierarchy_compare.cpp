/**
 * @file
 * Scenario: a system architect deciding where to spend complexity —
 * hardware (L2 tags and associativity on chip) or software (RAMpage).
 * Compares the three designs across the CPU-DRAM gap and reports the
 * best configuration of each plus the crossover rate where RAMpage
 * overtakes the conventional designs (the paper's headline question).
 *
 * Usage: hierarchy_compare [refs]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/cost_model.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

namespace
{

std::vector<std::string>
sizeLabels()
{
    std::vector<std::string> labels;
    for (std::uint64_t size : blockSizeSweep())
        labels.push_back(formatByteSize(size));
    return labels;
}

} // namespace

static int
runTool(int argc, char **argv)
{
    SimConfig sim = defaultSimConfig();
    if (argc > 1)
        sim.maxRefs = std::strtoull(argv[1], nullptr, 10);

    std::printf("Where should memory-system complexity live?\n");
    std::printf("Comparing DM L2 / 2-way L2 / RAMpage, %llu refs/run\n\n",
                static_cast<unsigned long long>(sim.maxRefs));

    // One behavioural sweep per system; re-price across issue rates.
    struct Family
    {
        const char *name;
        std::vector<SimResult> runs;
    };
    std::vector<Family> families;
    for (const char *name : {"baseline", "2-way", "RAMpage"}) {
        Family family{name, {}};
        for (std::uint64_t size : blockSizeSweep()) {
            if (std::string(name) == "baseline")
                family.runs.push_back(simulateSystem(
                    baselineConfig(1'000'000'000ull, size), sim));
            else if (std::string(name) == "2-way")
                family.runs.push_back(simulateSystem(
                    twoWayConfig(1'000'000'000ull, size), sim));
            else
                family.runs.push_back(simulateSystem(
                    rampageConfig(1'000'000'000ull, size), sim));
            std::fprintf(stderr, "  [%s %s done]\n", name,
                         formatByteSize(size).c_str());
        }
        families.push_back(std::move(family));
    }

    TextTable table;
    table.setHeader({"issue rate", "baseline best", "2-way best",
                     "RAMpage best", "winner"});
    for (std::uint64_t rate : issueRates()) {
        std::vector<std::string> row = {formatFrequency(rate)};
        Tick best_overall = ~Tick{0};
        std::string winner;
        for (const Family &family : families) {
            Tick best = ~Tick{0};
            std::string best_size;
            auto labels = sizeLabels();
            for (std::size_t i = 0; i < family.runs.size(); ++i) {
                Tick t = totalTimePs(family.runs[i].counts, rate);
                if (t < best) {
                    best = t;
                    best_size = labels[i];
                }
            }
            row.push_back(formatSeconds(best) + " @" + best_size);
            if (best < best_overall) {
                best_overall = best;
                winner = family.name;
            }
        }
        row.push_back(winner);
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("The paper's claim: as the CPU-DRAM speed gap grows, "
                "trading hardware complexity for software complexity "
                "(RAMpage) stops costing performance and starts "
                "winning.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::cliMain([&] { return runTool(argc, argv); });
}
