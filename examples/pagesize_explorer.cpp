/**
 * @file
 * Scenario: the paper's §6.2 "dynamic tuning" argument — because
 * RAMpage manages the SRAM in software, the page size could be chosen
 * per program at run time (a cache's line size is frozen in
 * hardware).  This example runs each Table 2 program *alone* through
 * RAMpage at every page size and reports each program's best size,
 * demonstrating the headroom a variable page size would unlock.
 *
 * Usage: pagesize_explorer [refs-per-program]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/cost_model.hh"
#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "trace/benchmarks.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runTool(int argc, char **argv)
{
    std::uint64_t refs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;
    constexpr std::uint64_t rate = 4'000'000'000ull;

    std::printf("Per-program best RAMpage page size (4GHz, %llu refs "
                "each)\n\n",
                static_cast<unsigned long long>(refs));

    TextTable table;
    std::vector<std::string> header = {"program"};
    for (std::uint64_t size : blockSizeSweep())
        header.push_back(formatByteSize(size));
    header.push_back("best");
    header.push_back("vs 1KB fixed");
    table.setHeader(header);

    double worst_penalty = 0;
    for (const ProgramProfile &profile : benchmarkRoster()) {
        std::vector<std::string> row = {profile.name};
        Tick best = ~Tick{0}, at_1k = 0;
        std::string best_label;
        for (std::uint64_t size : blockSizeSweep()) {
            auto hier = makeHierarchy(rampageConfig(rate, size));
            std::vector<std::unique_ptr<TraceSource>> workload;
            workload.push_back(
                std::make_unique<SyntheticProgram>(profile, 0));
            SimConfig sim = armedSimConfig(refs, refs);
            sim.insertSwitchTrace = false;
            Simulator driver(*hier, std::move(workload), sim);
            SimResult result = driver.run();
            row.push_back(formatSeconds(result.elapsedPs));
            if (result.elapsedPs < best) {
                best = result.elapsedPs;
                best_label = formatByteSize(size);
            }
            if (size == 1024)
                at_1k = result.elapsedPs;
        }
        double penalty = 100.0 *
                         (static_cast<double>(at_1k) -
                          static_cast<double>(best)) /
                         static_cast<double>(best);
        worst_penalty = std::max(worst_penalty, penalty);
        row.push_back(best_label);
        row.push_back(cellf("+%.1f%%", penalty));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("'vs 1KB fixed' is what each program loses when the "
                "whole system is pinned to the global best page size; "
                "worst case here: +%.1f%%.  A hardware cache cannot "
                "re-tune this; RAMpage can (paper Sec 6.2).\n",
                worst_penalty);
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::cliMain([&] { return runTool(argc, argv); });
}
