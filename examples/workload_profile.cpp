/**
 * @file
 * Workload characterisation tool: run each Table 2 program *alone*
 * through the baseline hierarchy and report its miss behaviour —
 * useful both for validating the synthetic traces against the paper's
 * locality assumptions and for tuning substitutes (see DESIGN.md).
 *
 * Usage: workload_profile [refs-per-program] [block-bytes]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/conventional.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "trace/benchmarks.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runTool(int argc, char **argv)
{
    std::uint64_t refs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;
    std::uint64_t block = argc > 2 ? parseByteSize(argv[2]) : 128;

    std::printf("per-program behaviour, baseline hierarchy, %s L2 "
                "blocks, %llu refs each\n\n",
                formatByteSize(block).c_str(),
                static_cast<unsigned long long>(refs));

    TextTable table;
    table.setHeader({"program", "tlbMiss%", "l1i%", "l1d%", "l2miss%",
                     "ovh%", "dram%"});

    for (const ProgramProfile &profile : benchmarkRoster()) {
        ConventionalHierarchy hier(
            baselineConfig(1'000'000'000ull, block));
        std::vector<std::unique_ptr<TraceSource>> workload;
        workload.push_back(
            std::make_unique<SyntheticProgram>(profile, 0));
        SimConfig sim = armedSimConfig(refs, refs); // no multiprogramming
        sim.insertSwitchTrace = false;
        Simulator simulator(hier, std::move(workload), sim);
        SimResult result = simulator.run();

        const EventCounts &c = result.counts;
        TimeBreakdown bd = priceEvents(c, 1'000'000'000ull);
        table.addRow({
            profile.name,
            cellf("%.3f", 100.0 * c.tlbMisses / c.traceRefs),
            cellf("%.2f", 100.0 * c.l1iMisses /
                              std::max<std::uint64_t>(c.instrFetches, 1)),
            cellf("%.2f", 100.0 * c.l1dMisses / c.traceRefs),
            cellf("%.3f", 100.0 * c.l2Misses / c.traceRefs),
            cellf("%.1f", 100.0 * c.overheadRatio()),
            cellf("%.1f", 100.0 * bd.fraction(TimeLevel::Dram)),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::cliMain([&] { return runTool(argc, argv); });
}
