/**
 * @file
 * Scenario: a long parameter sweep must survive a bad point and a
 * killed process.  This example runs a small baseline-vs-RAMpage
 * campaign through the fault-tolerant SweepRunner with two poisoned
 * points mixed in (an invalid configuration and a corrupted trace
 * file), prints the per-point outcome table, and checkpoints to a
 * manifest — run it twice and the completed points are skipped.
 *
 * Usage: sweep_campaign [checkpoint-path]
 *        (default checkpoint: ./sweep_campaign.checkpoint;
 *         delete the file to start the campaign over;
 *         RAMPAGE_JOBS=n runs the points on a worker pool — the
 *         outcome table and checkpoint set are the same either way)
 */

#include <cstdio>
#include <string>

#include "core/sweep.hh"
#include "stats/table.hh"
#include "trace/corrupter.hh"
#include "trace/file_format.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

namespace
{

/** Write a native trace, then clip its final record mid-way. */
std::string
makeCorruptTrace()
{
    std::string path = "sweep_campaign_corrupt.trace";
    {
        TraceWriter writer(path);
        MemRef ref;
        ref.pid = 1;
        for (int i = 0; i < 256; ++i) {
            ref.vaddr = 0x4000 + 32 * i;
            writer.write(ref);
        }
    }
    // 8-byte header + 256 packed 11-byte records, minus a partial tail.
    truncateTraceFile(path, 8 + 256 * 11 - 4);
    return path;
}

} // namespace

static int
runTool(int argc, char **argv)
{
    std::string checkpoint =
        argc > 1 ? argv[1] : "sweep_campaign.checkpoint";
    SimConfig sim = defaultSimConfig();

    std::printf("Fault-tolerant sweep campaign, checkpoint = %s\n"
                "(re-run to resume; delete the file to start over)\n\n",
                checkpoint.c_str());

    std::string corrupt = makeCorruptTrace();

    SweepRunner::Options opts;
    opts.checkpointPath = checkpoint;
    // Progress heartbeats for long campaigns (stderr, point
    // boundaries); deliberately short here so the demo shows one.
    opts.heartbeatSeconds = 0.5;
    SweepRunner runner(opts);
    for (std::uint64_t rate : {200'000'000ull, 1'000'000'000ull}) {
        runner.add("baseline/" + formatFrequency(rate), [=] {
            return simulateSystem(baselineConfig(rate, 1024), sim);
        });
        runner.add("rampage/" + formatFrequency(rate), [=] {
            return simulateSystem(rampageConfig(rate, 1024), sim);
        });
    }
    // Two deliberately poisoned points: the campaign must survive both.
    runner.add("poison/l2-block-16B", [=] {
        return simulateSystem(
            baselineConfig(1'000'000'000ull, 16), sim);
    });
    runner.add("poison/corrupt-trace", [=]() -> SimResult {
        TraceReadOptions strict;
        strict.strict = true;
        readTraceFile(corrupt, 1, strict);
        return SimResult{};
    });

    SweepReport report = runner.run();

    TextTable table;
    table.setHeader({"point", "status", "wall(s)", "time(s)", "error"});
    for (const PointOutcome &outcome : report.outcomes) {
        std::string time = outcome.haveResult
            ? formatSeconds(outcome.result.elapsedPs)
            : "-";
        std::string error = outcome.status == PointStatus::Failed
            ? std::string(errorCategoryName(outcome.errorCategory)) +
                  ": " + outcome.error
            : "-";
        if (error.size() > 48)
            error = error.substr(0, 45) + "...";
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.2f", outcome.wallSeconds);
        table.addRow({outcome.id, pointStatusName(outcome.status), wall,
                      time, error});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\n%zu ok, %zu failed, %zu skipped via checkpoint\n",
                report.okCount(), report.failedCount(),
                report.skippedCount());
    std::remove(corrupt.c_str());
    return report.okCount() + report.skippedCount() > 0 ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return rampage::cliMain([&] { return runTool(argc, argv); });
}
