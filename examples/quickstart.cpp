/**
 * @file
 * Quickstart: build the paper's three systems at one issue rate and
 * one block/page size, run the Table 2 workload through each, and
 * print run time, per-level time fractions and the headline memory
 * statistics.
 *
 * Usage: quickstart [issue-rate] [block-bytes] [refs]
 *   e.g. quickstart 1GHz 1KB 4000000
 *
 * Set RAMPAGE_STATS=1 to also dump every system's full named-stats
 * snapshot (the same registry the benches serialize with --json).
 */

#include <cstdio>
#include <cstdlib>

#include "core/sweep.hh"
#include "stats/table.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runTool(int argc, char **argv)
{
    std::uint64_t issue_hz =
        argc > 1 ? parseFrequency(argv[1]) : 1'000'000'000ull;
    std::uint64_t block = argc > 2 ? parseByteSize(argv[2]) : 1024;
    SimConfig sim = defaultSimConfig();
    if (argc > 3)
        sim.maxRefs = std::strtoull(argv[3], nullptr, 10);

    std::printf("RAMpage quickstart: issue rate %s, block/page %s, "
                "%llu refs, quantum %llu\n\n",
                formatFrequency(issue_hz).c_str(),
                formatByteSize(block).c_str(),
                static_cast<unsigned long long>(sim.maxRefs),
                static_cast<unsigned long long>(sim.quantumRefs));

    TextTable table;
    table.setHeader({"system", "time(s)", "L1i%", "L1d%", "L2/MM%",
                     "DRAM%", "TLBmiss", "L2miss/flt", "ovh%"});

    bool dump_stats = std::getenv("RAMPAGE_STATS") != nullptr;

    auto report = [&](const SimResult &result) {
        if (dump_stats)
            std::printf("---- %s stats ----\n%s\n",
                        result.systemName.c_str(),
                        result.stats.toText().c_str());
        TimeBreakdown bd = priceEvents(result.counts, issue_hz,
                                       result.stallPs);
        const EventCounts &c = result.counts;
        table.addRow({
            result.systemName,
            cellf("%.4f", result.seconds()),
            cellf("%.1f", 100 * bd.fraction(TimeLevel::L1I)),
            cellf("%.1f", 100 * bd.fraction(TimeLevel::L1D)),
            cellf("%.1f", 100 * bd.fraction(TimeLevel::L2)),
            cellf("%.1f", 100 * bd.fraction(TimeLevel::Dram)),
            cellf("%llu", static_cast<unsigned long long>(c.tlbMisses)),
            cellf("%llu", static_cast<unsigned long long>(c.l2Misses)),
            cellf("%.1f", 100 * c.overheadRatio()),
        });
    };

    report(simulateSystem(baselineConfig(issue_hz, block), sim));
    report(simulateSystem(twoWayConfig(issue_hz, block), sim));
    report(simulateSystem(rampageConfig(issue_hz, block), sim));
    report(simulateSystem(rampageConfig(issue_hz, block, true), sim));

    std::printf("%s\n", table.render().c_str());
    std::printf("ovh%% = TLB-miss + page-fault handler references as a\n"
                "percentage of benchmark references (the paper's Fig 4).\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::cliMain([&] { return runTool(argc, argv); });
}
