/**
 * @file
 * Trace utility: generate, convert and inspect trace files in the
 * native binary and Dinero `din` formats.  This is the bridge for
 * replacing the synthetic workload with real traces captured via
 * Pin or Valgrind (dump those as `din`, then feed them back with
 * `FileTraceSource`).
 *
 * Usage:
 *   trace_tools gen <benchmark> <refs> <out-file> [--din]
 *   trace_tools convert <in-file> <out-file> [--din]
 *   trace_tools info <file>
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stats/histogram.hh"
#include "trace/benchmarks.hh"
#include "trace/file_format.hh"
#include "trace/synthetic.hh"
#include "util/error.hh"
#include "util/logging.hh"

using namespace rampage;

namespace
{

int
cmdGen(int argc, char **argv)
{
    if (argc < 5)
        fatal("usage: trace_tools gen <benchmark> <refs> <out> [--din]");
    const ProgramProfile &profile = benchmarkProfile(argv[2]);
    std::uint64_t refs = std::strtoull(argv[3], nullptr, 10);
    bool din = argc > 5 && std::strcmp(argv[5], "--din") == 0;

    SyntheticProgram prog(profile, 0);
    TraceWriter writer(argv[4], din);
    MemRef ref;
    for (std::uint64_t i = 0; i < refs; ++i) {
        prog.next(ref);
        writer.write(ref);
    }
    std::printf("wrote %llu references of '%s' to %s (%s)\n",
                static_cast<unsigned long long>(writer.count()),
                profile.name.c_str(), argv[4],
                din ? "din" : "native");
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 4)
        fatal("usage: trace_tools convert <in> <out> [--din]");
    bool din = argc > 4 && std::strcmp(argv[4], "--din") == 0;
    FileTraceSource in(argv[2]);
    TraceWriter out(argv[3], din);
    MemRef ref;
    while (in.next(ref))
        out.write(ref);
    std::printf("converted %llu references (%s -> %s)\n",
                static_cast<unsigned long long>(out.count()),
                in.isNative() ? "native" : "din",
                din ? "din" : "native");
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        fatal("usage: trace_tools info <file>");
    FileTraceSource in(argv[2]);
    std::uint64_t fetches = 0, loads = 0, stores = 0;
    Addr min_addr = ~Addr{0}, max_addr = 0;
    Log2Histogram stride_hist;
    Addr prev = 0;
    bool first = true;
    MemRef ref;
    while (in.next(ref)) {
        switch (ref.kind) {
          case RefKind::IFetch:
            ++fetches;
            break;
          case RefKind::Load:
            ++loads;
            break;
          case RefKind::Store:
            ++stores;
            break;
        }
        min_addr = std::min(min_addr, ref.vaddr);
        max_addr = std::max(max_addr, ref.vaddr);
        if (!first) {
            Addr delta = ref.vaddr > prev ? ref.vaddr - prev
                                          : prev - ref.vaddr;
            stride_hist.add(delta);
        }
        prev = ref.vaddr;
        first = false;
    }
    std::uint64_t total = fetches + loads + stores;
    std::printf("%s: %llu refs (%s format)\n", argv[2],
                static_cast<unsigned long long>(total),
                in.isNative() ? "native" : "din");
    if (total == 0)
        return 0;
    std::printf("  ifetch %llu (%.1f%%)  load %llu (%.1f%%)  "
                "store %llu (%.1f%%)\n",
                static_cast<unsigned long long>(fetches),
                100.0 * fetches / total,
                static_cast<unsigned long long>(loads),
                100.0 * loads / total,
                static_cast<unsigned long long>(stores),
                100.0 * stores / total);
    std::printf("  address range [%#llx, %#llx]\n",
                static_cast<unsigned long long>(min_addr),
                static_cast<unsigned long long>(max_addr));
    std::printf("  successive-reference distance histogram:\n%s",
                stride_hist.render().c_str());
    return 0;
}

} // namespace

static int
runTool(int argc, char **argv)
{
    if (argc < 2)
        fatal("usage: trace_tools gen|convert|info ...");
    if (std::strcmp(argv[1], "gen") == 0)
        return cmdGen(argc, argv);
    if (std::strcmp(argv[1], "convert") == 0)
        return cmdConvert(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return cmdInfo(argc, argv);
    fatal("unknown subcommand '%s'", argv[1]);
}

int
main(int argc, char **argv)
{
    return rampage::cliMain([&] { return runTool(argc, argv); });
}
