/**
 * @file
 * Scenario: when is it worth taking a context switch on a miss?
 * (paper §4.6, §5.4).  A page transfer from Direct Rambus costs a
 * fixed number of nanoseconds; the ~400-reference switch costs
 * cycles.  As the issue rate grows, the transfer is worth ever more
 * instructions and switching wins.  This example sweeps the issue
 * rate at a fixed page size and prints the break-even analysis next
 * to the measured outcome.
 *
 * Usage: ctx_switch_demo [page-size] [refs]
 */

#include <cstdio>
#include <cstdlib>

#include "core/sweep.hh"
#include "dram/rambus.hh"
#include "stats/table.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runTool(int argc, char **argv)
{
    std::uint64_t page = argc > 1 ? parseByteSize(argv[1]) : 4096;
    SimConfig sim = defaultSimConfig(true);
    if (argc > 2)
        sim.maxRefs = std::strtoull(argv[2], nullptr, 10);

    DirectRambus rambus;
    Tick transfer = rambus.readPs(page);

    std::printf("Context switch on miss: %s pages, one transfer = "
                "%llu ns, switch trace = ~400 refs\n\n",
                formatByteSize(page).c_str(),
                static_cast<unsigned long long>(transfer / psPerNs));

    TextTable table;
    table.setHeader({"issue rate", "transfer (instr)", "blocking(s)",
                     "switching(s)", "gain", "stall(s)"});

    for (std::uint64_t rate : issueRates()) {
        SimResult blocking = simulateSystem(
            rampageConfig(rate, page, false), sim);
        SimResult switching = simulateSystem(
            rampageConfig(rate, page, true), sim);
        std::fprintf(stderr, "  [%s done]\n",
                     formatFrequency(rate).c_str());
        double gain = 100.0 *
                      (static_cast<double>(blocking.elapsedPs) -
                       static_cast<double>(switching.elapsedPs)) /
                      static_cast<double>(blocking.elapsedPs);
        table.addRow({
            formatFrequency(rate),
            cellf("%.0f", static_cast<double>(transfer) /
                              static_cast<double>(cycleTimePs(rate))),
            formatSeconds(blocking.elapsedPs),
            formatSeconds(switching.elapsedPs),
            cellf("%+.1f%%", gain),
            formatSeconds(switching.stallPs),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Break-even intuition: switching pays when the "
                "transfer is worth well over the ~400-instruction "
                "switch cost — i.e. at high issue rates and large "
                "pages (the paper's Sec 5.4 finding).\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::cliMain([&] { return runTool(argc, argv); });
}
